package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"trail/internal/graph"
)

// flushRec records every batch the worker flushes and signals sizes on a
// channel so tests can wait without sleeping.
type flushRec struct {
	mu      sync.Mutex
	batches [][]*pending
	sizes   chan int
}

func newFlushRec() *flushRec { return &flushRec{sizes: make(chan int, 64)} }

func (r *flushRec) flush(b []*pending) {
	r.mu.Lock()
	r.batches = append(r.batches, append([]*pending(nil), b...))
	r.mu.Unlock()
	r.sizes <- len(b)
}

func (r *flushRec) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.batches {
		n += len(b)
	}
	return n
}

func testPending(key string) *pending {
	return &pending{kind: graph.KindEvent, key: key, ctx: context.Background(), done: make(chan result, 1)}
}

func waitSize(t *testing.T, r *flushRec) int {
	t.Helper()
	select {
	case n := <-r.sizes:
		return n
	case <-time.After(5 * time.Second):
		t.Fatal("no flush within 5s")
		return 0
	}
}

// TestBatcherMaxBatchFlush: a full batch flushes immediately, without
// waiting out maxWait.
func TestBatcherMaxBatchFlush(t *testing.T) {
	rec := newFlushRec()
	b := newBatcher(4, time.Hour, 16, rec.flush)
	defer b.close()
	for i := 0; i < 4; i++ {
		if !b.enqueue(testPending("k")) {
			t.Fatal("enqueue refused")
		}
	}
	if n := waitSize(t, rec); n != 4 {
		t.Fatalf("flushed %d, want the full batch of 4", n)
	}
}

// TestBatcherMaxWaitFlush: a partial batch flushes once maxWait elapses
// after the first arrival.
func TestBatcherMaxWaitFlush(t *testing.T) {
	rec := newFlushRec()
	b := newBatcher(64, 50*time.Millisecond, 64, rec.flush)
	defer b.close()
	start := time.Now()
	for i := 0; i < 3; i++ {
		b.enqueue(testPending("k"))
	}
	if n := waitSize(t, rec); n != 3 {
		t.Fatalf("flushed %d, want 3", n)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("flush took %v, should be ~maxWait", elapsed)
	}
}

// TestBatcherSingleRequestFastPath: with maxWait=0 a lone request is
// flushed immediately as a batch of one.
func TestBatcherSingleRequestFastPath(t *testing.T) {
	rec := newFlushRec()
	b := newBatcher(8, 0, 16, rec.flush)
	defer b.close()
	b.enqueue(testPending("solo"))
	if n := waitSize(t, rec); n != 1 {
		t.Fatalf("flushed %d, want 1", n)
	}
}

// TestBatcherOpportunisticCoalesce: even with maxWait=0, requests that
// queued up while the worker was busy share the next batch.
func TestBatcherOpportunisticCoalesce(t *testing.T) {
	rec := newFlushRec()
	gate := make(chan struct{})
	var first sync.Once
	b := newBatcher(8, 0, 16, func(batch []*pending) {
		rec.flush(batch)
		first.Do(func() { <-gate }) // hold the worker so the burst queues behind it
	})
	defer b.close()
	b.enqueue(testPending("head"))
	if n := waitSize(t, rec); n != 1 {
		t.Fatalf("first flush %d, want 1", n)
	}
	// The worker is now parked inside the first flush; the burst buffers.
	for i := 0; i < 5; i++ {
		b.enqueue(testPending("burst"))
	}
	close(gate)
	if n := waitSize(t, rec); n != 5 {
		t.Fatalf("second flush %d, want the 5-request burst in one batch", n)
	}
}

// TestBatcherDrainOnClose: close answers everything already admitted —
// both the batch the worker is holding open and the queue behind it.
func TestBatcherDrainOnClose(t *testing.T) {
	rec := newFlushRec()
	b := newBatcher(4, time.Hour, 64, rec.flush)
	for i := 0; i < 7; i++ {
		if !b.enqueue(testPending("k")) {
			t.Fatal("enqueue refused")
		}
	}
	if n := waitSize(t, rec); n != 4 {
		t.Fatalf("pre-close flush %d, want 4", n)
	}
	b.close() // worker holds [3] against a 1h timer; close must flush it
	if got := rec.total(); got != 7 {
		t.Fatalf("flushed %d of 7 admitted requests", got)
	}
}

// TestBatcherEnqueueAfterClose: a drained batcher refuses new work.
func TestBatcherEnqueueAfterClose(t *testing.T) {
	b := newBatcher(4, 0, 16, func([]*pending) {})
	b.close()
	if b.enqueue(testPending("late")) {
		t.Fatal("enqueue accepted after close")
	}
}

// TestBatcherEnqueueCanceledOnFullQueue: a caller whose context dies
// while the queue is full gets a refusal, not a deadlock.
func TestBatcherEnqueueCanceledOnFullQueue(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	b := newBatcher(1, 0, 1, func([]*pending) {
		once.Do(func() { close(started) })
		<-gate // closed at cleanup, so later flushes pass straight through
	})
	defer func() { close(gate); b.close() }()
	b.enqueue(testPending("held"))
	<-started                      // worker is now stuck inside flush
	b.enqueue(testPending("queued")) // fills the 1-slot queue
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &pending{kind: graph.KindEvent, key: "doomed", ctx: ctx, done: make(chan result, 1)}
	okc := make(chan bool, 1)
	go func() { okc <- b.enqueue(p) }()
	select {
	case ok := <-okc:
		if ok {
			t.Fatal("enqueue accepted a canceled request into a full queue")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("enqueue blocked despite canceled context")
	}
}
