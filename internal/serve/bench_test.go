package serve

import (
	"testing"

	"trail/internal/graph"
)

// The serving-layer headline numbers: one coalesced forward pass over 32
// queries versus 32 single-query passes. The batched path amortises the
// full-graph message passing (which dominates and is query-count
// independent) across the batch, so it should hold a multiple-x
// throughput advantage — the gate BENCH_7.json records.

func benchQueries(b *testing.B, n int) (*Snapshot, []graph.NodeID) {
	snap := fixture(b).snapshot64(b)
	ids := snap.g.NodesOfKind(graph.KindEvent)
	if len(ids) < n {
		b.Fatalf("only %d events", len(ids))
	}
	return snap, ids[:n]
}

func BenchmarkServeAttributeBatch32(b *testing.B) {
	snap, queries := benchQueries(b, 32)
	out := make([][]float64, len(queries))
	for i := range out {
		out[i] = make([]float64, snap.Classes())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Attribute(queries, out)
	}
	b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkServeAttributeSingle32(b *testing.B) {
	snap, queries := benchQueries(b, 32)
	out := [][]float64{make([]float64, snap.Classes())}
	one := make([]graph.NodeID, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			one[0] = q
			snap.Attribute(one, out)
		}
	}
	b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "queries/s")
}
