package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"trail/internal/eval"
	"trail/internal/gnn"
)

// fixtureData is the shared serving corpus: a small test world's TKG and
// a model trained on it, built once per test binary (training dominates
// the package's test time otherwise).
type fixtureData struct {
	ectx  *eval.Context
	enc   *gnn.EncoderSet
	model *gnn.Model
	m32   *gnn.ModelOf[float32]
	err   error
}

var (
	fixOnce sync.Once
	fix     fixtureData
)

func fixture(t testing.TB) *fixtureData {
	t.Helper()
	fixOnce.Do(func() {
		ectx, err := eval.NewContext(eval.TestOptions())
		if err != nil {
			fix.err = err
			return
		}
		aeCfg := gnn.DefaultAEConfig()
		aeCfg.Epochs, aeCfg.Hidden, aeCfg.Encoding = 2, 32, 32
		enc, err := gnn.TrainEncodersCtx(context.Background(), ectx.TKG.G, ectx.TKG.Features, aeCfg, gnn.EncoderTrainOpts{})
		if err != nil {
			fix.err = err
			return
		}
		in := gnn.BuildInput(ectx.TKG.G, ectx.TKG.Features, enc, ectx.Classes)
		cfg := gnn.Config{Layers: 2, Hidden: 16, Encoding: aeCfg.Encoding, LR: 1e-2, Epochs: 6, Seed: 1}
		model, err := gnn.Train(in, ectx.TKG.EventNodes(), cfg)
		if err != nil {
			fix.err = err
			return
		}
		fix = fixtureData{ectx: ectx, enc: enc, model: model, m32: gnn.CastModel[float32](model)}
	})
	if fix.err != nil {
		t.Fatal(fix.err)
	}
	return &fix
}

// snapshot64 / snapshot32 build fresh snapshots of each precision.
func (f *fixtureData) snapshot64(t testing.TB) *Snapshot {
	t.Helper()
	s, err := NewSnapshot(f.ectx.TKG.G, f.ectx.TKG.Features, f.ectx.Names, f.enc, f.model)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func (f *fixtureData) snapshot32(t testing.TB) *Snapshot {
	t.Helper()
	s, err := NewSnapshot(f.ectx.TKG.G, f.ectx.TKG.Features, f.ectx.Names, f.enc, f.m32)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// loader serves the float64 snapshot on every call.
func (f *fixtureData) loader() Loader {
	return func() (*Snapshot, error) {
		return NewSnapshot(f.ectx.TKG.G, f.ectx.TKG.Features, f.ectx.Names, f.enc, f.model)
	}
}

// alternatingLoader switches precision on every call — float64 first (the
// startup load), float32 on the first reload, and so on. The reload
// hammer uses the precision difference as a tracer: every answer must
// match exactly one precision's reference, and one epoch must never mix.
func (f *fixtureData) alternatingLoader() Loader {
	var calls atomic.Uint64
	return func() (*Snapshot, error) {
		if calls.Add(1)%2 == 1 {
			return NewSnapshot(f.ectx.TKG.G, f.ectx.TKG.Features, f.ectx.Names, f.enc, f.model)
		}
		return NewSnapshot(f.ectx.TKG.G, f.ectx.TKG.Features, f.ectx.Names, f.enc, f.m32)
	}
}
