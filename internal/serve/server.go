package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"trail/internal/graph"
	"trail/internal/metrics"
)

// Config carries the operational knobs of the attribution server. Zero
// values select the documented defaults.
type Config struct {
	// MaxBatch caps how many requests share one forward pass (default 32).
	MaxBatch int
	// MaxWait bounds how long the batcher holds a batch open after its
	// first request arrives (default 2ms; 0 disables the deliberate wait
	// but opportunistic coalescing of queued bursts remains).
	MaxWait time.Duration
	// Timeout is the per-request budget from admission to answer
	// (default 5s).
	Timeout time.Duration
	// MaxBody caps the request body size in bytes (default 1<<20).
	MaxBody int64
	// TopK is the default number of ranked predictions per answer
	// (default 5; requests may override, 0 means all classes).
	TopK int
	// QueueDepth sizes the admission queue (default 4*MaxBatch); a full
	// queue sheds load as 503 rather than buffering unboundedly.
	QueueDepth int
	// DrainTimeout bounds the graceful shutdown drain (default 10s).
	DrainTimeout time.Duration
	// Logf, when set, receives operational notices (reloads, lifecycle).
	Logf func(format string, args ...any)
	// Registry, when set, is used instead of a private registry so
	// embedders (the streaming ingest daemon) can expose their own
	// metrics on the same /metrics endpoint. Metric names must not
	// collide with the trail_http_*/trail_attribute_*/trail_snapshot_*
	// families the server registers.
	Registry *metrics.Registry
	// StaleAfter, when positive, makes /healthz report degraded (HTTP 503
	// with a JSON reason) once the serving snapshot is older than this —
	// so orchestrators notice a daemon whose reload/ingest pipeline has
	// silently stalled while request serving still works. 0 disables the
	// check (always 200 while a snapshot is loaded).
	StaleAfter time.Duration
	// ExtraStats, when set, is sampled per /v1/stats request and merged
	// into the response under "extra" — the hook embedders (the streaming
	// ingest daemon) use to surface pipeline counters such as cut latency
	// and CSR patch/fallback totals next to the serving stats.
	ExtraStats func() map[string]any
}

func (c *Config) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait == 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.TopK == 0 {
		c.TopK = 5
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Server is the attribution daemon: an atomic snapshot pointer, a
// coalescing batcher feeding the snapshot's inference engine, and the
// HTTP surface (/v1/attribute, /v1/stats, /v1/reload, /v1/sample,
// /healthz, /metrics).
type Server struct {
	cfg  Config
	load Loader

	snap      atomic.Pointer[Snapshot]
	nextEpoch atomic.Uint64
	reloadMu  sync.Mutex // serialises Reload; readers never take it

	bat     *batcher
	start   time.Time
	handler http.Handler

	reg *metrics.Registry
	met serveMetrics
}

type serveMetrics struct {
	httpRequests  *metrics.CounterVec // path, code
	attrRequests  *metrics.Counter
	attrBatched   *metrics.Counter
	attrErrors    *metrics.CounterVec // code
	batches       *metrics.Counter
	batchSize     *metrics.Histogram
	attrLatency   *metrics.Histogram
	inferLatency  *metrics.Histogram
	inflight      *metrics.Gauge
	snapshotEpoch *metrics.Gauge
	reloads       *metrics.Counter
	reloadFails   *metrics.Counter
	nodes, events *metrics.Gauge
}

// New builds a server, loads the initial snapshot via load, and starts
// the batch worker. Callers own shutdown: either Run (which drains on
// ctx cancel) or Close directly when driving the Handler themselves.
func New(cfg Config, load Loader) (*Server, error) {
	cfg.fill()
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{cfg: cfg, load: load, start: time.Now(), reg: reg}
	s.initMetrics()
	snap, err := load()
	if err != nil {
		return nil, err
	}
	s.install(snap)
	s.bat = newBatcher(cfg.MaxBatch, cfg.MaxWait, cfg.QueueDepth, s.serveBatch)
	s.handler = s.buildMux()
	return s, nil
}

func (s *Server) initMetrics() {
	r := s.reg
	s.met.httpRequests = r.CounterVec("trail_http_requests_total",
		"HTTP requests by path and status code.", "path", "code")
	s.met.attrRequests = r.Counter("trail_attribute_requests_total",
		"Attribution queries admitted to the batching queue.")
	s.met.attrBatched = r.Counter("trail_attribute_batched_requests_total",
		"Attribution queries that shared a forward pass with at least one other query.")
	s.met.attrErrors = r.CounterVec("trail_attribute_errors_total",
		"Attribution queries that failed, by error code.", "code")
	s.met.batches = r.Counter("trail_attribute_batches_total",
		"Forward-pass batches executed.")
	s.met.batchSize = r.Histogram("trail_attribute_batch_size",
		"Requests coalesced per forward pass.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	s.met.attrLatency = r.Histogram("trail_attribute_latency_seconds",
		"End-to-end attribution latency (admission to answer).", metrics.DefBuckets())
	s.met.inferLatency = r.Histogram("trail_inference_seconds",
		"Forward-pass duration per batch.", metrics.DefBuckets())
	s.met.inflight = r.Gauge("trail_inflight_requests",
		"HTTP requests currently being served.")
	s.met.snapshotEpoch = r.Gauge("trail_snapshot_epoch",
		"Epoch of the currently installed snapshot.")
	s.met.reloads = r.Counter("trail_reloads_total",
		"Snapshot reloads that installed successfully.")
	s.met.reloadFails = r.Counter("trail_reload_failures_total",
		"Snapshot reloads that failed and left the old snapshot serving.")
	s.met.nodes = r.Gauge("trail_snapshot_nodes",
		"Nodes in the currently installed snapshot graph.")
	s.met.events = r.Gauge("trail_snapshot_events",
		"Event nodes in the currently installed snapshot graph.")
	// Age is computed at scrape time: a stalled ingest→publish loop shows
	// up as this gauge climbing while trail_snapshot_epoch stands still.
	r.GaugeFunc("trail_snapshot_age_seconds",
		"Seconds since the currently installed snapshot was published.",
		func() float64 {
			snap := s.snap.Load()
			if snap == nil {
				return 0
			}
			return time.Since(snap.LoadedAt).Seconds()
		})
}

// install publishes a snapshot: stamps its epoch and install time, then
// swaps the atomic pointer. In-flight batches keep the snapshot they
// loaded; new batches see the new one on their next pointer load.
func (s *Server) install(snap *Snapshot) {
	snap.Epoch = s.nextEpoch.Add(1)
	snap.LoadedAt = time.Now()
	s.snap.Store(snap)
	s.met.snapshotEpoch.Set(float64(snap.Epoch))
	s.met.nodes.Set(float64(snap.NumNodes))
	s.met.events.Set(float64(snap.NumEvents))
}

// Snapshot returns the currently installed snapshot.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Publish installs an externally-built snapshot — the builder-behind-
// server entry point used by streaming ingest, bypassing the Loader.
// Epoch assignment and metric stamping match Reload; in-flight batches
// keep the snapshot they loaded.
func (s *Server) Publish(snap *Snapshot) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.install(snap)
	s.met.reloads.Inc()
	s.cfg.Logf("serve: published snapshot epoch %d (%s, %d nodes, %d events)",
		snap.Epoch, snap.Precision, snap.NumNodes, snap.NumEvents)
}

// Reload builds a fresh snapshot from the Loader and installs it.
// Concurrent reloads serialise; queries are never blocked — they read
// whichever snapshot is installed when their batch runs. On failure the
// old snapshot keeps serving and the error is returned.
func (s *Server) Reload() (*Snapshot, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	snap, err := s.load()
	if err != nil {
		s.met.reloadFails.Inc()
		s.cfg.Logf("serve: reload failed, keeping epoch %d: %v", s.Snapshot().Epoch, err)
		return nil, err
	}
	s.install(snap)
	s.met.reloads.Inc()
	s.cfg.Logf("serve: installed snapshot epoch %d (%s, %d nodes, %d events)",
		snap.Epoch, snap.Precision, snap.NumNodes, snap.NumEvents)
	return snap, nil
}

// Close stops the batch worker after draining admitted requests. Call
// after the HTTP listener has stopped accepting (Run does this).
func (s *Server) Close() { s.bat.close() }

// Registry exposes the server's metrics registry (for tests and
// embedding).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// serveBatch answers one coalesced batch. The snapshot pointer is
// loaded exactly once, so every request in the batch — resolution,
// inference and reported epoch — sees one consistent state even if a
// reload lands mid-flight.
func (s *Server) serveBatch(batch []*pending) {
	snap := s.snap.Load()
	live := batch[:0]
	for _, p := range batch {
		if p.ctx.Err() != nil {
			continue // caller already gone; skip its inference cost
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}

	// Resolve each key against the batch snapshot, deduplicating repeated
	// nodes onto one shared inference row.
	rowOf := make(map[graph.NodeID]int, len(live))
	nodeOf := make([]graph.NodeID, len(live))
	resolved := make([]bool, len(live))
	var queries []graph.NodeID
	for i, p := range live {
		id, ok := snap.Lookup(p.kind, p.key)
		if !ok {
			continue
		}
		resolved[i], nodeOf[i] = true, id
		if _, seen := rowOf[id]; !seen {
			rowOf[id] = len(queries)
			queries = append(queries, id)
		}
	}

	var out [][]float64
	if len(queries) > 0 {
		out = make([][]float64, len(queries))
		for i := range out {
			out[i] = make([]float64, snap.Classes())
		}
		t0 := time.Now()
		snap.Attribute(queries, out)
		s.met.inferLatency.Observe(time.Since(t0).Seconds())
	}

	s.met.batches.Inc()
	s.met.batchSize.Observe(float64(len(live)))
	if len(live) > 1 {
		s.met.attrBatched.Add(uint64(len(live)))
	}
	for i, p := range live {
		if !resolved[i] {
			p.done <- result{snap: snap, err: errNotFound}
			continue
		}
		p.done <- result{snap: snap, node: nodeOf[i], probs: out[rowOf[nodeOf[i]]]}
	}
}

// --- HTTP surface ---

type attributeRequest struct {
	Kind string `json:"kind"`
	Key  string `json:"key"`
	TopK int    `json:"top_k"`
}

type prediction struct {
	APT         string  `json:"apt"`
	Probability float64 `json:"probability"`
}

type attributeResponse struct {
	Kind        string       `json:"kind"`
	Key         string       `json:"key"`
	NodeID      int64        `json:"node_id"`
	Epoch       uint64       `json:"epoch"`
	Precision   string       `json:"precision"`
	Predictions []prediction `json:"predictions"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error errorBody `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: errorBody{Code: code, Message: msg}})
}

// errNotFound marks a key that does not resolve in the snapshot graph.
var errNotFound = errors.New("not found")

func (s *Server) buildMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/attribute", s.instrument("/v1/attribute", s.handleAttribute))
	mux.HandleFunc("/v1/stats", s.instrument("/v1/stats", s.handleStats))
	mux.HandleFunc("/v1/reload", s.instrument("/v1/reload", s.handleReload))
	mux.HandleFunc("/v1/sample", s.instrument("/v1/sample", s.handleSample))
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("/metrics", s.reg.Handler())
	return mux
}

// handleHealthz reports liveness, degrading to 503 when the serving
// snapshot has gone stale (Config.StaleAfter): the process is up and
// answering, but whatever feeds it fresh snapshots has stalled.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "degraded",
			"reason": "no snapshot loaded",
		})
		return
	}
	age := time.Since(snap.LoadedAt)
	if s.cfg.StaleAfter > 0 && age > s.cfg.StaleAfter {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "degraded",
			"reason": fmt.Sprintf("snapshot is stale: age %s exceeds threshold %s", age.Round(time.Second), s.cfg.StaleAfter),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.met.inflight.Inc()
		defer s.met.inflight.Dec()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.met.httpRequests.With(path, strconv.Itoa(rec.code)).Inc()
	}
}

func (s *Server) handleAttribute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST required")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req attributeRequest
	if err := dec.Decode(&req); err != nil {
		s.met.attrErrors.With("invalid_request").Inc()
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	kind, ok := ParseKind(req.Kind)
	if !ok {
		s.met.attrErrors.With("invalid_kind").Inc()
		writeError(w, http.StatusBadRequest, "invalid_kind",
			fmt.Sprintf("unknown kind %q (want event|ip|url|domain|asn)", req.Kind))
		return
	}
	if req.Key == "" {
		s.met.attrErrors.With("invalid_request").Inc()
		writeError(w, http.StatusBadRequest, "invalid_request", "key is required")
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	p := &pending{kind: kind, key: req.Key, ctx: ctx, done: make(chan result, 1)}
	startAt := time.Now()
	s.met.attrRequests.Inc()
	if !s.bat.enqueue(p) {
		if ctx.Err() != nil {
			s.met.attrErrors.With("timeout").Inc()
			writeError(w, http.StatusGatewayTimeout, "timeout", "queue admission timed out")
		} else {
			s.met.attrErrors.With("shutting_down").Inc()
			writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is draining")
		}
		return
	}
	select {
	case res := <-p.done:
		s.met.attrLatency.Observe(time.Since(startAt).Seconds())
		if res.err != nil {
			s.met.attrErrors.With("not_found").Inc()
			writeError(w, http.StatusNotFound, "not_found",
				fmt.Sprintf("%s %q not in snapshot epoch %d", req.Kind, req.Key, res.snap.Epoch))
			return
		}
		topK := s.cfg.TopK
		if req.TopK > 0 {
			topK = req.TopK
		}
		writeJSON(w, http.StatusOK, attributeResponse{
			Kind:        req.Kind,
			Key:         req.Key,
			NodeID:      int64(res.node),
			Epoch:       res.snap.Epoch,
			Precision:   res.snap.Precision,
			Predictions: rankPredictions(res.snap.Names, res.probs, topK),
		})
	case <-ctx.Done():
		s.met.attrErrors.With("timeout").Inc()
		writeError(w, http.StatusGatewayTimeout, "timeout", "attribution timed out")
	}
}

// rankPredictions sorts classes by descending probability (index order
// breaks ties deterministically) and keeps the top k (k<=0 keeps all).
func rankPredictions(names []string, probs []float64, k int) []prediction {
	idx := make([]int, len(probs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return probs[idx[a]] > probs[idx[b]] })
	if k > 0 && k < len(idx) {
		idx = idx[:k]
	}
	out := make([]prediction, len(idx))
	for i, c := range idx {
		out[i] = prediction{APT: names[c], Probability: probs[c]}
	}
	return out
}

type statsResponse struct {
	Epoch          uint64    `json:"epoch"`
	Precision      string    `json:"precision"`
	LoadedAt       time.Time `json:"loaded_at"`
	SnapshotAgeSec float64   `json:"snapshot_age_seconds"`
	UptimeSeconds  float64   `json:"uptime_seconds"`
	Nodes         int       `json:"nodes"`
	Edges         int       `json:"edges"`
	Events        int       `json:"events"`
	LabeledEvents int       `json:"labeled_events"`
	Classes       int       `json:"classes"`
	Requests      uint64    `json:"requests_total"`
	Batches       uint64    `json:"batches_total"`
	Reloads       uint64    `json:"reloads_total"`
	Extra         map[string]any `json:"extra,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET required")
		return
	}
	snap := s.Snapshot()
	var extra map[string]any
	if s.cfg.ExtraStats != nil {
		extra = s.cfg.ExtraStats()
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Epoch:          snap.Epoch,
		Precision:      snap.Precision,
		LoadedAt:       snap.LoadedAt,
		SnapshotAgeSec: time.Since(snap.LoadedAt).Seconds(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Nodes:         snap.NumNodes,
		Edges:         snap.NumEdges,
		Events:        snap.NumEvents,
		LabeledEvents: snap.NumLabeled,
		Classes:       snap.Classes(),
		Requests:      s.met.attrRequests.Value(),
		Batches:       s.met.batches.Value(),
		Reloads:       s.met.reloads.Value(),
		Extra:         extra,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST required")
		return
	}
	snap, err := s.Reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload_failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":     snap.Epoch,
		"precision": snap.Precision,
		"nodes":     snap.NumNodes,
		"events":    snap.NumEvents,
	})
}

const sampleLimitCap = 4096

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET required")
		return
	}
	kindName := r.URL.Query().Get("kind")
	if kindName == "" {
		kindName = "event"
	}
	kind, ok := ParseKind(kindName)
	if !ok {
		writeError(w, http.StatusBadRequest, "invalid_kind",
			fmt.Sprintf("unknown kind %q", kindName))
		return
	}
	limit := 64
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "invalid_request", "limit must be a positive integer")
			return
		}
		limit = n
	}
	if limit > sampleLimitCap {
		limit = sampleLimitCap
	}
	snap := s.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":  kindName,
		"epoch": snap.Epoch,
		"keys":  snap.SampleKeys(kind, limit),
	})
}

// Handler returns the server's HTTP surface, for embedding and tests.
func (s *Server) Handler() http.Handler { return s.handler }

// Run serves on addr until ctx is cancelled, then drains: the listener
// stops accepting, in-flight handlers finish (bounded by DrainTimeout),
// and finally the batch worker drains its queue and exits.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.handler, ReadHeaderTimeout: 10 * time.Second}
	s.cfg.Logf("serve: listening on %s (epoch %d, %s)",
		ln.Addr(), s.Snapshot().Epoch, s.Snapshot().Precision)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.cfg.Logf("serve: draining (timeout %s)", s.cfg.DrainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err = srv.Shutdown(dctx)
	s.Close()
	s.cfg.Logf("serve: stopped")
	return err
}
