package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"trail/internal/graph"
)

func newTestServer(t *testing.T, cfg Config, load Loader) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv, err := New(cfg, load)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postAttribute(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/attribute", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// directAnswer computes the reference probability row for one key
// straight from a snapshot, bypassing HTTP and batching.
func directAnswer(t *testing.T, snap *Snapshot, key string) []float64 {
	t.Helper()
	id, ok := snap.Lookup(graph.KindEvent, key)
	if !ok {
		t.Fatalf("key %q not in snapshot", key)
	}
	out := [][]float64{make([]float64, snap.Classes())}
	snap.Attribute([]graph.NodeID{id}, out)
	return out[0]
}

func TestServerAttributeRoundTrip(t *testing.T) {
	f := fixture(t)
	srv, ts := newTestServer(t, Config{MaxWait: time.Millisecond}, f.loader())

	snap := srv.Snapshot()
	if snap.Epoch != 1 || snap.Precision != "float64" {
		t.Fatalf("initial snapshot epoch %d precision %s", snap.Epoch, snap.Precision)
	}
	keys := snap.SampleKeys(graph.KindEvent, 4)
	if len(keys) == 0 {
		t.Fatal("no event keys in snapshot")
	}

	resp, body := postAttribute(t, ts.URL, map[string]any{
		"kind": "event", "key": keys[0], "top_k": snap.Classes(),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var ar attributeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if ar.Kind != "event" || ar.Key != keys[0] || ar.Epoch != 1 || ar.Precision != "float64" {
		t.Fatalf("echo fields wrong: %+v", ar)
	}
	if len(ar.Predictions) != snap.Classes() {
		t.Fatalf("%d predictions, want all %d classes", len(ar.Predictions), snap.Classes())
	}
	sum := 0.0
	for i, p := range ar.Predictions {
		sum += p.Probability
		if i > 0 && p.Probability > ar.Predictions[i-1].Probability {
			t.Fatalf("predictions not sorted at %d: %v > %v", i, p.Probability, ar.Predictions[i-1].Probability)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum to %v", sum)
	}

	// Default TopK truncates the ranking.
	resp, body = postAttribute(t, ts.URL, map[string]any{"kind": "event", "key": keys[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var topped attributeResponse
	json.Unmarshal(body, &topped)
	if want := 5; len(topped.Predictions) != want {
		t.Fatalf("default top-k gave %d predictions, want %d", len(topped.Predictions), want)
	}
}

func TestServerAttributeErrors(t *testing.T) {
	f := fixture(t)
	_, ts := newTestServer(t, Config{MaxWait: time.Millisecond, MaxBody: 256}, f.loader())

	get, err := http.Get(ts.URL + "/v1/attribute")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", get.StatusCode)
	}

	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed", `{`, http.StatusBadRequest, "invalid_request"},
		{"unknown field", `{"kind":"event","key":"x","nope":1}`, http.StatusBadRequest, "invalid_request"},
		{"bad kind", `{"kind":"proto","key":"x"}`, http.StatusBadRequest, "invalid_kind"},
		{"missing key", `{"kind":"event"}`, http.StatusBadRequest, "invalid_request"},
		{"unknown key", `{"kind":"event","key":"no-such-event"}`, http.StatusNotFound, "not_found"},
		{"oversized", `{"kind":"event","key":"` + strings.Repeat("x", 512) + `"}`, http.StatusBadRequest, "invalid_request"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/attribute", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.status, raw)
		}
		var er errorResponse
		if err := json.Unmarshal(raw, &er); err != nil {
			t.Fatalf("%s: non-JSON error body %s", tc.name, raw)
		}
		if er.Error.Code != tc.code {
			t.Fatalf("%s: code %q want %q", tc.name, er.Error.Code, tc.code)
		}
	}
}

func TestServerStatsSampleHealthMetrics(t *testing.T) {
	f := fixture(t)
	srv, ts := newTestServer(t, Config{MaxWait: time.Millisecond}, f.loader())

	var health map[string]string
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz %v", health)
	}

	var stats statsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	snap := srv.Snapshot()
	if stats.Epoch != 1 || stats.Precision != "float64" ||
		stats.Nodes != snap.NumNodes || stats.Events != snap.NumEvents ||
		stats.Classes != snap.Classes() || stats.LabeledEvents == 0 {
		t.Fatalf("stats %+v vs snapshot %+v", stats, snap)
	}

	var sample struct {
		Kind  string   `json:"kind"`
		Epoch uint64   `json:"epoch"`
		Keys  []string `json:"keys"`
	}
	getJSON(t, ts.URL+"/v1/sample?kind=event&limit=5", &sample)
	if sample.Kind != "event" || len(sample.Keys) == 0 || len(sample.Keys) > 5 {
		t.Fatalf("sample %+v", sample)
	}
	for _, k := range sample.Keys {
		if _, ok := snap.Lookup(graph.KindEvent, k); !ok {
			t.Fatalf("sampled key %q does not resolve", k)
		}
	}

	// One real query so the serving counters are nonzero in /metrics.
	resp, body := postAttribute(t, ts.URL, map[string]any{"kind": "event", "key": sample.Keys[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attribute status %d: %s", resp.StatusCode, body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mbody)
	for _, want := range []string{
		"trail_http_requests_total{",
		"trail_snapshot_epoch 1",
		"trail_attribute_requests_total 1",
		"trail_attribute_batches_total 1",
		"trail_attribute_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: %v in %s", url, err, body)
	}
}

// TestServerBatchedMatchesSequential is the coalescing equivalence gate:
// concurrent requests that share forward passes answer bit-identically
// to one-at-a-time reference inference on the same snapshot.
func TestServerBatchedMatchesSequential(t *testing.T) {
	f := fixture(t)
	srv, ts := newTestServer(t, Config{MaxBatch: 32, MaxWait: 20 * time.Millisecond}, f.loader())

	snap := srv.Snapshot()
	keys := snap.SampleKeys(graph.KindEvent, 32)
	if len(keys) < 8 {
		t.Fatalf("only %d event keys", len(keys))
	}
	want := make(map[string][]float64, len(keys))
	for _, k := range keys {
		want[k] = directAnswer(t, snap, k)
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(keys))
	for _, k := range keys {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			raw, _ := json.Marshal(map[string]any{"kind": "event", "key": key, "top_k": snap.Classes()})
			resp, err := http.Post(ts.URL+"/v1/attribute", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d %s", key, resp.StatusCode, body)
				return
			}
			var ar attributeResponse
			if err := json.Unmarshal(body, &ar); err != nil {
				errs <- err
				return
			}
			got := make(map[string]float64, len(ar.Predictions))
			for _, p := range ar.Predictions {
				got[p.APT] = p.Probability
			}
			for c, apt := range snap.Names {
				if got[apt] != want[key][c] {
					errs <- fmt.Errorf("%s class %s: batched %v != sequential %v",
						key, apt, got[apt], want[key][c])
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := srv.met.attrBatched.Value(); got == 0 {
		t.Error("no request shared a batch despite 32 concurrent clients and 20ms max-wait")
	}
	if batches := srv.met.batches.Value(); batches >= uint64(len(keys)) {
		t.Errorf("%d batches for %d requests — no coalescing happened", batches, len(keys))
	}
}

// TestServerReloadHammer is the torn-read gate: clients hammer
// /v1/attribute while snapshots of alternating precision reload
// underneath them. Every answer must be bit-identical to exactly the
// reference of its reported precision, and one epoch must never serve
// two precisions.
func TestServerReloadHammer(t *testing.T) {
	f := fixture(t)
	srv, ts := newTestServer(t, Config{MaxBatch: 16, MaxWait: time.Millisecond}, f.alternatingLoader())

	keys := srv.Snapshot().SampleKeys(graph.KindEvent, 8)
	classes := srv.Snapshot().Classes()
	ref := map[string]map[string][]float64{"float64": {}, "float32": {}}
	s64, s32 := f.snapshot64(t), f.snapshot32(t)
	for _, k := range keys {
		ref["float64"][k] = directAnswer(t, s64, k)
		ref["float32"][k] = directAnswer(t, s32, k)
	}

	var (
		mu        sync.Mutex
		epochPrec = map[uint64]string{}
	)
	stop := make(chan struct{})
	var reloads sync.WaitGroup
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		defer close(stop)
		for i := 0; i < 12; i++ {
			if _, err := srv.Reload(); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[(w+i)%len(keys)]
				raw, _ := json.Marshal(map[string]any{"kind": "event", "key": key, "top_k": classes})
				resp, err := http.Post(ts.URL+"/v1/attribute", "application/json", bytes.NewReader(raw))
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				var ar attributeResponse
				if err := json.Unmarshal(body, &ar); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, seen := epochPrec[ar.Epoch]; seen && prev != ar.Precision {
					t.Errorf("epoch %d served both %s and %s", ar.Epoch, prev, ar.Precision)
				}
				epochPrec[ar.Epoch] = ar.Precision
				mu.Unlock()
				want := ref[ar.Precision][key]
				if want == nil {
					t.Errorf("unknown precision %q", ar.Precision)
					return
				}
				got := map[string]float64{}
				for _, p := range ar.Predictions {
					got[p.APT] = p.Probability
				}
				for c, apt := range srv.Snapshot().Names {
					if got[apt] != want[c] {
						t.Errorf("epoch %d (%s) key %s class %s: %v != reference %v — torn or mixed-snapshot answer",
							ar.Epoch, ar.Precision, key, apt, got[apt], want[c])
						return
					}
				}
			}
		}(w)
	}
	reloads.Wait()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(epochPrec) < 2 {
		t.Errorf("hammer only observed %d epoch(s) — reload interleaving did not exercise the swap", len(epochPrec))
	}
	for epoch, prec := range epochPrec {
		want := "float64"
		if epoch%2 == 0 {
			want = "float32"
		}
		if prec != want {
			t.Errorf("epoch %d served %s, alternating loader should give %s", epoch, prec, want)
		}
	}
}

// TestServerRunGracefulDrain exercises the signal path: Run serves until
// its context is cancelled, finishes in-flight work, and returns.
func TestServerRunGracefulDrain(t *testing.T) {
	f := fixture(t)
	srv, err := New(Config{MaxWait: time.Millisecond, Logf: t.Logf}, f.loader())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, "127.0.0.1:0") }()

	// The listener address is not exposed; hit the handler directly to
	// prove the server answers, then cancel and require a clean return.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz %d", rec.Code)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run did not drain within 15s")
	}
}

func TestServerReloadEndpointAndFailure(t *testing.T) {
	f := fixture(t)
	calls := 0
	loader := func() (*Snapshot, error) {
		calls++
		if calls == 2 {
			return nil, fmt.Errorf("synthetic loader failure")
		}
		return f.loader()()
	}
	srv, ts := newTestServer(t, Config{MaxWait: time.Millisecond}, loader)

	// First reload fails: the old snapshot must keep serving.
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed reload status %d: %s", resp.StatusCode, body)
	}
	if srv.Snapshot().Epoch != 1 {
		t.Fatalf("failed reload bumped epoch to %d", srv.Snapshot().Epoch)
	}

	// Second reload succeeds and bumps the epoch.
	resp, err = http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr struct {
		Epoch uint64 `json:"epoch"`
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}
	if json.Unmarshal(body, &rr); rr.Epoch != 2 || srv.Snapshot().Epoch != 2 {
		t.Fatalf("reload epoch %d / snapshot %d, want 2", rr.Epoch, srv.Snapshot().Epoch)
	}
	if got := srv.met.reloadFails.Value(); got != 1 {
		t.Fatalf("reload failure counter %d", got)
	}
}

// TestServerSnapshotAgeAndPublish: /v1/stats reports snapshot age, the
// age gauge renders at scrape time, and Publish installs an external
// snapshot with a fresh epoch — the streaming-ingest publish path.
func TestServerSnapshotAgeAndPublish(t *testing.T) {
	f := fixture(t)
	srv, ts := newTestServer(t, Config{MaxWait: time.Millisecond}, f.loader())

	var stats statsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.SnapshotAgeSec < 0 || stats.SnapshotAgeSec > 60 {
		t.Fatalf("snapshot_age_seconds %v out of range", stats.SnapshotAgeSec)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "# TYPE trail_snapshot_age_seconds gauge") ||
		!strings.Contains(string(raw), "trail_snapshot_age_seconds ") {
		t.Fatalf("metrics missing snapshot age gauge:\n%s", raw)
	}

	// External publish: build a second snapshot from the fixture and
	// install it directly.
	snap2, err := f.loader()()
	if err != nil {
		t.Fatal(err)
	}
	before := srv.Snapshot().Epoch
	srv.Publish(snap2)
	got := srv.Snapshot()
	if got != snap2 || got.Epoch != before+1 {
		t.Fatalf("publish: epoch %d (before %d), snap identity %v", got.Epoch, before, got == snap2)
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Epoch != before+1 {
		t.Fatalf("stats epoch %d after publish, want %d", stats.Epoch, before+1)
	}
}

// TestHealthzStaleness: with StaleAfter set, /healthz must flip to 503
// with a JSON reason once the snapshot outlives the threshold, and
// recover to 200 after a reload installs a fresh snapshot.
func TestHealthzStaleness(t *testing.T) {
	f := fixture(t)
	srv, ts := newTestServer(t, Config{StaleAfter: 60 * time.Millisecond, MaxWait: time.Millisecond}, f.loader())

	var health map[string]string
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("fresh snapshot reported %v", health)
	}

	time.Sleep(90 * time.Millisecond)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stale snapshot: got %d %s, want 503", resp.StatusCode, body)
	}
	var degraded map[string]string
	if err := json.Unmarshal(body, &degraded); err != nil {
		t.Fatalf("degraded healthz is not JSON: %v in %s", err, body)
	}
	if degraded["status"] != "degraded" || !strings.Contains(degraded["reason"], "stale") {
		t.Fatalf("degraded healthz payload %v", degraded)
	}

	if _, err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("reloaded snapshot reported %v", health)
	}
}

// TestHealthzNoThresholdAlways200: StaleAfter unset keeps the legacy
// always-ok behaviour no matter the snapshot age.
func TestHealthzNoThresholdAlways200(t *testing.T) {
	f := fixture(t)
	_, ts := newTestServer(t, Config{MaxWait: time.Millisecond}, f.loader())
	time.Sleep(30 * time.Millisecond)
	var health map[string]string
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz without threshold reported %v", health)
	}
}
