// Package serve implements attribution-as-a-service: a long-running HTTP
// daemon that loads a checkpointed model + TKG snapshot and answers
// "attribute this event/IOC" queries at production concurrency.
//
// The design (DESIGN.md §3g) rests on three pieces:
//
//   - Snapshot isolation: every query reads an immutable Snapshot — a
//     frozen graph, encoded features, and a trained model — held behind
//     an atomic pointer. Reloads build the next snapshot off to the side
//     and swap the pointer; in-flight requests keep the epoch they
//     started on, so answers within one epoch are bit-identical and a
//     swap can never tear a read.
//
//   - Request batching: concurrent attribute requests coalesce in a
//     queue and share one full-graph forward pass
//     (gnn.PredictProbaInto), amortising the pooled workspaces and fused
//     SpMM kernels across the batch; softmax rows are demuxed back to
//     each caller.
//
//   - Operational hardening: graceful drain on shutdown, per-request
//     timeouts, request-size limits, structured JSON errors, and
//     Prometheus-text metrics from internal/metrics.
package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"time"

	"trail/internal/apt"
	"trail/internal/ckpt"
	"trail/internal/core"
	"trail/internal/gnn"
	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/osint"
)

// Artefact filenames inside a training directory (`trail train -dir`).
const (
	TKGFile      = "tkg.ck"      // TKG snapshot (graph + features), ckpt envelope
	EncodersFile = "encoders.ck" // per-IOC-kind autoencoder set
	ModelFile    = "model.ck"    // float64 GraphSAGE model
	ModelF32File = "model.f32.ck" // float32 serving model (preferred when present)
)

// Snapshot is one immutable serving state: the frozen graph, the encoded
// input tensors, the trained model, and the label context. All fields
// are read-only after construction; the server publishes snapshots via
// an atomic pointer and never mutates an installed one.
type Snapshot struct {
	// Epoch numbers the snapshot within the serving process (assigned at
	// install time, monotonically increasing across reloads). Answers are
	// bit-identical within one epoch.
	Epoch uint64
	// Precision reports the model element type: "float32" or "float64".
	Precision string
	// Names maps class index to APT name.
	Names []string
	// LoadedAt is the install time (zero until installed).
	LoadedAt time.Time

	// Inventory, for /v1/stats.
	NumNodes, NumEdges, NumEvents, NumLabeled int

	g   *graph.Graph
	eng engine
}

// engine is the precision-erased inference core of a snapshot: the
// generic model/input pair behind a monomorphic call surface, so the
// batcher and HTTP layer never carry a type parameter.
type engine interface {
	classes() int
	// attribute runs one batched forward pass and writes one probability
	// row (len == classes) per query into out.
	attribute(queries []graph.NodeID, out [][]float64)
}

type engineOf[T mat.Float] struct {
	model   *gnn.ModelOf[T]
	in      gnn.InputOf[T]
	visible map[graph.NodeID]int
}

func (e *engineOf[T]) classes() int { return e.model.Classes() }

func (e *engineOf[T]) attribute(queries []graph.NodeID, out [][]float64) {
	ws := mat.NewWorkspaceOf[T]()
	defer ws.Release()
	dst := mat.NewOf[T](len(queries), e.model.Classes())
	e.model.PredictProbaInto(dst, e.in, e.visible, queries, ws)
	for i := range queries {
		row := dst.Row(i)
		for j, v := range row {
			out[i][j] = float64(v)
		}
	}
}

func precisionOf[T mat.Float]() string {
	switch any(T(0)).(type) {
	case float32:
		return "float32"
	case float64:
		return "float64"
	default:
		return "custom"
	}
}

// NewSnapshot assembles a serving snapshot from a built TKG graph, its
// feature vectors, the APT roster, a trained encoder set and a trained
// model of any precision. The visible-label context is fixed here — every
// labelled event in the graph — so an answer depends only on the snapshot
// and the queried node, never on what else happens to share its batch.
// The construction runs one warm-up query to prime the lazy CSR operator
// caches (mean normalisation, degree reordering) and to verify the
// model/input shapes agree before the snapshot starts serving.
func NewSnapshot[T mat.Float](g *graph.Graph, feats map[graph.NodeID][]float64, names []string, enc *gnn.EncoderSet, model *gnn.ModelOf[T]) (*Snapshot, error) {
	if model.Classes() != len(names) {
		return nil, fmt.Errorf("serve: model predicts %d classes, roster has %d", model.Classes(), len(names))
	}
	in := gnn.CastInput[T](gnn.BuildInput(g, feats, enc, len(names)))
	events := g.NodesOfKind(graph.KindEvent)
	visible := make(map[graph.NodeID]int, len(events))
	for _, ev := range events {
		if l := g.Node(ev).Label; l >= 0 {
			visible[ev] = l
		}
	}
	snap := &Snapshot{
		Precision:  precisionOf[T](),
		Names:      append([]string(nil), names...),
		NumNodes:   g.NumNodes(),
		NumEdges:   g.NumEdges(),
		NumEvents:  len(events),
		NumLabeled: len(visible),
		g:          g,
		eng:        &engineOf[T]{model: model, in: in, visible: visible},
	}
	if len(events) > 0 {
		warm := [][]float64{make([]float64, len(names))}
		snap.eng.attribute(events[:1], warm)
	}
	return snap, nil
}

// Classes returns the number of APT classes the snapshot predicts over.
func (s *Snapshot) Classes() int { return s.eng.classes() }

// Lookup resolves a (kind, key) pair against the snapshot's frozen graph.
func (s *Snapshot) Lookup(kind graph.NodeKind, key string) (graph.NodeID, bool) {
	return s.g.Lookup(kind, key)
}

// SampleKeys returns up to limit node keys of the given kind, in ID
// order — the seed corpus for load generators.
func (s *Snapshot) SampleKeys(kind graph.NodeKind, limit int) []string {
	ids := s.g.NodesOfKind(kind)
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	keys := make([]string, len(ids))
	for i, id := range ids {
		keys[i] = s.g.Node(id).Key
	}
	return keys
}

// Attribute answers queries directly against this snapshot, bypassing
// the batching queue — the entry used by warm-up, tests and the
// benchmarks. out must have one len==Classes() row per query.
func (s *Snapshot) Attribute(queries []graph.NodeID, out [][]float64) {
	s.eng.attribute(queries, out)
}

// Loader produces a fresh Snapshot. The server calls it once at startup
// and once per reload; each call must return independent state (the
// returned snapshot is installed and must never be mutated afterwards).
type Loader func() (*Snapshot, error)

// DirLoader returns a Loader over a `trail train` checkpoint directory:
// tkg.ck (graph + features), encoders.ck, and the model. When a float32
// serving checkpoint (model.f32.ck) is present it is preferred — the
// ROADMAP item-5 default — otherwise the float64 model.ck is served with
// a logged notice. The enrichment services and APT resolver reattach the
// TKG exactly as core.LoadTKG requires; logf (optional) receives
// progress notices.
func DirLoader(dir string, svc osint.Services, resolver *apt.Resolver, logf func(format string, args ...any)) Loader {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return func() (*Snapshot, error) {
		tkg, err := core.LoadTKG(filepath.Join(dir, TKGFile), svc, resolver)
		if err != nil {
			return nil, fmt.Errorf("serve: load TKG: %w", err)
		}
		enc, err := gnn.LoadEncoders(filepath.Join(dir, EncodersFile))
		if err != nil {
			return nil, fmt.Errorf("serve: load encoders: %w", err)
		}
		names := resolver.Names()

		f32Path := filepath.Join(dir, ModelF32File)
		if info, err := ckpt.Peek(f32Path); err == nil {
			model, err := gnn.LoadModelOf[float32](f32Path)
			if err != nil {
				return nil, fmt.Errorf("serve: load float32 model: %w", err)
			}
			logf("serve: loaded float32 model %s (kind %s v%d, %d payload bytes)",
				ModelF32File, info.Kind, info.Version, info.Length)
			return NewSnapshot(tkg.G, tkg.Features, names, enc, model)
		} else if !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("serve: inspect %s: %w", ModelF32File, err)
		}

		model, err := gnn.LoadModel(filepath.Join(dir, ModelFile))
		if err != nil {
			return nil, fmt.Errorf("serve: load model: %w", err)
		}
		logf("serve: no %s in %s — serving at float64 (run `trail train -f32` to emit a float32 serving checkpoint)",
			ModelF32File, dir)
		return NewSnapshot(tkg.G, tkg.Features, names, enc, model)
	}
}

// ParseKind maps the wire names of the attribute API to node kinds.
func ParseKind(s string) (graph.NodeKind, bool) {
	switch s {
	case "event":
		return graph.KindEvent, true
	case "ip":
		return graph.KindIP, true
	case "url":
		return graph.KindURL, true
	case "domain":
		return graph.KindDomain, true
	case "asn":
		return graph.KindASN, true
	default:
		return 0, false
	}
}

// KindName is the inverse of ParseKind.
func KindName(k graph.NodeKind) string {
	switch k {
	case graph.KindEvent:
		return "event"
	case graph.KindIP:
		return "ip"
	case graph.KindURL:
		return "url"
	case graph.KindDomain:
		return "domain"
	case graph.KindASN:
		return "asn"
	default:
		return "unknown"
	}
}
