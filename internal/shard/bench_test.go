package shard

import (
	"context"
	"testing"

	"trail/internal/osint"
)

// benchWorld is larger than the unit-test world so the sharded build's
// throughput number reflects real partition + merge work rather than
// supervisor overhead.
func benchWorld() *osint.World {
	cfg := osint.DefaultConfig()
	cfg.Months = 12
	cfg.EventsPerMonth = 60
	return osint.NewWorld(cfg)
}

// BenchmarkShardedBuild measures the full fault-tolerant pipeline —
// plan, supervised parallel shard builds with checkpointing, and the
// deterministic merge — reporting pulse throughput alongside ns/op.
func BenchmarkShardedBuild(b *testing.B) {
	b.ReportAllocs()
	w := benchWorld()
	total := len(w.Pulses())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		res, err := Build(context.Background(), w, Config{
			Shards:  8,
			Workers: 4,
			Dir:     dir,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Merged != total {
			b.Fatalf("merged %d of %d pulses", res.Report.Merged, total)
		}
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "pulses/sec")
}

// BenchmarkShardedResume measures the crash-recovery floor: every shard
// checkpoint already on disk, so the cost is envelope validation plus
// the deterministic merge — what a killed run pays on restart no matter
// where the kill landed.
func BenchmarkShardedResume(b *testing.B) {
	b.ReportAllocs()
	w := benchWorld()
	dir := b.TempDir()
	cfg := Config{Shards: 8, Workers: 4, Dir: dir}
	if _, err := Build(context.Background(), w, cfg); err != nil {
		b.Fatal(err)
	}
	cfg.Resume = true
	var lastMerge float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Build(context.Background(), w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Resumed != res.Report.Shards {
			b.Fatalf("resumed %d of %d shards", res.Report.Resumed, res.Report.Shards)
		}
		lastMerge = res.Report.MergeTime.Seconds()
	}
	b.ReportMetric(lastMerge, "merge-sec")
}
