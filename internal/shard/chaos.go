package shard

import "hash/fnv"

// ChaosConfig injects shard-level faults for the supervision tests and
// the -shard-chaos CLI mode. Every decision is a pure function of
// (Seed, op, shard, attempt) — no process state — so a resumed run, a
// different worker count, or a different completion order injects exactly
// the same faults in exactly the same places. That purity is what lets
// the chaos tests demand bit-identical output: the fault schedule itself
// is part of the deterministic input.
type ChaosConfig struct {
	Seed int64
	// FailRate is the probability one build attempt fails before it
	// starts (a transient infrastructure fault).
	FailRate float64
	// PanicRate is the probability one build attempt panics mid-build
	// (the supervisor must contain it).
	PanicRate float64
	// PoisonRate is the probability a shard is permanently failed,
	// decided once per shard: no attempt can succeed.
	PoisonRate float64
	// MaxConsecutive caps how many consecutive attempts of one shard the
	// injector may fail (by either fault kind), so a finite MaxAttempts
	// chain always reaches a clean attempt on non-poisoned shards.
	// Default 2.
	MaxConsecutive int
}

// chaosHash derives a stable 63-bit value from the seed and decision
// coordinates (FNV-1a, mirroring the osint chaos injector's scheme).
func chaosHash(seed int64, op, what string, shard, attempt int) int64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v int64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(seed)
	h.Write([]byte(op))
	h.Write([]byte(what))
	put(int64(shard))
	put(int64(attempt))
	return int64(h.Sum64() &^ (1 << 63))
}

// roll returns true with probability rate for the given coordinates.
func (c *ChaosConfig) roll(op string, shard, attempt int, rate float64) bool {
	if c == nil || rate <= 0 {
		return false
	}
	const den = 1 << 30
	return chaosHash(c.Seed, op, "roll", shard, attempt)%den < int64(rate*den)
}

// maxConsecutive returns the cap on back-to-back injected attempt faults.
func (c *ChaosConfig) maxConsecutive() int {
	if c == nil || c.MaxConsecutive <= 0 {
		return 2
	}
	return c.MaxConsecutive
}

// attemptFaulted reports whether attempt n of the shard draws a transient
// fault of the given kind, honouring the consecutive-fault cap across
// both kinds (an attempt only faults if fewer than MaxConsecutive
// immediately preceding attempts faulted).
func (c *ChaosConfig) attemptFaulted(op string, shard, n int) bool {
	if c == nil {
		return false
	}
	streak := 0
	for a := n - 1; a >= 1; a-- {
		if !(c.roll("fail", shard, a, c.FailRate) || c.roll("panic", shard, a, c.PanicRate)) {
			break
		}
		streak++
	}
	if streak >= c.maxConsecutive() {
		return false
	}
	return c.roll(op, shard, n, rateOf(c, op))
}

func rateOf(c *ChaosConfig, op string) float64 {
	switch op {
	case "fail":
		return c.FailRate
	case "panic":
		return c.PanicRate
	}
	return 0
}

// failsAttempt reports whether attempt n of the shard fails up front.
func (c *ChaosConfig) failsAttempt(shard, n int) bool {
	return c.attemptFaulted("fail", shard, n)
}

// panics reports whether attempt n of the shard panics mid-build. A
// fail-fault and a panic-fault never fire on the same attempt (fail is
// checked first by the builder and short-circuits the attempt).
func (c *ChaosConfig) panics(shard, n int) bool {
	return c.attemptFaulted("panic", shard, n)
}

// poisons reports whether the shard is permanently failed. Decided once
// per shard (attempt-independent), so retries and resumes agree.
func (c *ChaosConfig) poisons(shard int) bool {
	if c == nil {
		return false
	}
	return c.roll("poison", shard, 0, c.PoisonRate)
}
