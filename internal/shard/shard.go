// Package shard implements the fault-tolerant partitioned TKG build: the
// world's pulse feed is cut into contiguous time windows (osint
// partitioning), each window's sub-TKG is built by a supervised worker —
// panic recovery, per-attempt timeout, capped retry with backoff, typed
// failure taxonomy — and persisted as an atomic checkpoint the moment it
// completes, so a killed build resumes from the finished shards instead
// of starting over.
//
// The merge is the part with teeth. Three properties combine to make the
// final graph byte-identical regardless of worker count, shard completion
// order, or how many crash/retry cycles occurred:
//
//  1. every build attempt of shard i runs against a FRESH services stack
//     from Config.Services(i), so no mutable enrichment state (chaos
//     streaks, breaker windows, caches) couples shards or attempts — a
//     shard's bytes are a pure function of (world, window, shard seed);
//  2. the merge phase starts only after every worker has finished and
//     reads the PERSISTED shard-%04d.ck bytes back from disk in sorted
//     shard order, so a resumed run and an uninterrupted run feed the
//     merge literally identical inputs;
//  3. core.TKG.MergeFrom remaps node IDs through a stable (kind, key)
//     table walked in source-ID order, so the stitched graph's IDs,
//     adjacency order and serialised bytes are deterministic.
//
// A shard that keeps failing is poisoned, not fatal: a tombstone
// checkpoint records the failure, its events are accounted in the report,
// and the build completes on the surviving shards. Resume re-attempts
// tombstoned shards — under a seeded chaos injector they re-poison
// identically (decisions are pure functions of the seed), preserving
// bit-identity; against real flaky infrastructure they get a second
// chance.
package shard

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"trail/internal/ckpt"
	"trail/internal/core"
	"trail/internal/metrics"
	"trail/internal/osint"
)

// ErrShardFailed marks one failed build attempt of a shard: an injected
// transient fault, a recovered panic, or an attempt timeout. The
// supervisor retries these up to Config.MaxAttempts times.
var ErrShardFailed = errors.New("shard: build attempt failed")

// ErrShardPoisoned marks a shard that exhausted its attempts (or was
// permanently failed by the chaos injector). The build continues without
// it; the report accounts for its events.
var ErrShardPoisoned = errors.New("shard: poisoned")

// Spec describes one shard of the build plan: a contiguous month window
// of the world's pulse feed.
type Spec struct {
	Index  int
	Window osint.Window
	Pulses int
}

// Plan partitions the world into up to n pulse-balanced shards. The plan
// is a pure function of (world config, n): every process run — fresh or
// resumed — plans identical shards, which is what lets a resume trust the
// checkpoints it finds on disk.
func Plan(w *osint.World, n int) ([]Spec, [][]osint.Pulse) {
	wins, parts := w.PartitionPulses(n)
	specs := make([]Spec, len(wins))
	for i, win := range wins {
		specs[i] = Spec{Index: i, Window: win, Pulses: len(parts[i])}
	}
	return specs, parts
}

// Config controls a sharded build.
type Config struct {
	// Shards is the number of partitions to plan (clamped to the number
	// of months in the world). Default 1.
	Shards int
	// Workers bounds concurrent shard builds. Default GOMAXPROCS.
	Workers int
	// Dir is where shard-%04d.ck checkpoints live. Required.
	Dir string
	// Resume loads finished shard checkpoints instead of rebuilding them.
	// Tombstones (poisoned shards) are always re-attempted.
	Resume bool
	// Build is the TKG construction config shared by all shards.
	Build core.BuildConfig
	// Services returns the enrichment stack for one build attempt of the
	// given shard. It MUST return a fresh stack per call: resilience
	// middleware and chaos injectors hold per-key mutable state, and
	// sharing one across shards (or attempts) would make a shard's bytes
	// depend on its neighbours' schedules. Nil defaults to the world's
	// infallible services.
	Services func(shard int) osint.FallibleServices
	// Timeout bounds one build attempt. 0 = no limit.
	Timeout time.Duration
	// MaxAttempts bounds build attempts per shard before it is poisoned.
	// Default 3.
	MaxAttempts int
	// Backoff is the base delay between attempts, doubled per retry with
	// deterministic jitter. Default 50ms.
	Backoff time.Duration
	// Chaos, when non-nil, injects shard-level faults (attempt failures,
	// panics, permanent poison) from a seeded deterministic injector.
	Chaos *ChaosConfig
	// Metrics, when non-nil, receives the trail_shard_* family.
	Metrics *metrics.Registry
	// OnShardDone, when non-nil, runs after shard i's checkpoint is
	// durably on disk (test hook: the kill-at-every-shard harness cancels
	// the build here).
	OnShardDone func(shard int)
	// StepDelay sleeps after each shard completion; the smoke test uses
	// it to widen the kill window. 0 in production.
	StepDelay time.Duration
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
}

// Report is the exact accounting of one sharded build. Its numbers are
// captured into each shard's checkpoint at build time, so a resumed run
// reports identical totals to an uninterrupted one.
type Report struct {
	Shards  int
	Built   int   // shards built by this run
	Resumed int   // shards loaded from checkpoints
	Retried int   // extra build attempts beyond the first, this run
	Poisoned []int // shard indexes that exhausted their attempts

	// PoisonedPulses counts the events a poisoned shard should have
	// contributed: the gap between the plan and the merged graph.
	PoisonedPulses int

	Pulses, Merged, Skipped int
	EnrichErrors            int64
	Degraded                int

	BuildTime time.Duration
	MergeTime time.Duration
}

// Render formats the report for CLI output.
func (r *Report) Render() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "sharded build: %d shards (%d built, %d resumed, %d retries, %d poisoned) in %v + %v merge\n",
		r.Shards, r.Built, r.Resumed, r.Retried, len(r.Poisoned), r.BuildTime.Round(time.Millisecond), r.MergeTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %d pulses (%d merged, %d skipped), %d enrichment failures, %d degraded nodes\n",
		r.Pulses, r.Merged, r.Skipped, r.EnrichErrors, r.Degraded)
	if len(r.Poisoned) > 0 {
		fmt.Fprintf(&b, "  poisoned shards %v: %d events missing from the graph\n", r.Poisoned, r.PoisonedPulses)
	}
	return b.String()
}

// Result bundles the merged TKG with the build accounting.
type Result struct {
	TKG    *core.TKG
	Report Report
}

// CheckpointKind tags shard sub-TKG checkpoints (and tombstones) inside
// the ckpt envelope.
const CheckpointKind = "shard.tkg"

const checkpointVersion = 1

// shardStats is the per-shard accounting captured at build time and
// persisted with the sub-TKG, because the TKG snapshot itself does not
// carry the build report.
type shardStats struct {
	Pulses, Merged, Skipped int
	EnrichErrors            int64
	Degraded                int
	Attempts                int
}

// envelope is the gob payload of one shard-%04d.ck: either a completed
// sub-TKG (TKG != nil) or a poison tombstone (Poisoned set, Err holding
// the final attempt's failure).
type envelope struct {
	Spec     Spec
	Stats    shardStats
	Poisoned bool
	Err      string
	TKG      []byte
}

// ckPath names shard i's checkpoint file in dir.
func ckPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.ck", i))
}

type shardMetrics struct {
	built, retried, poisoned, resumed *metrics.Counter
	mergeSeconds, peakHeap            *metrics.Gauge
}

func newShardMetrics(r *metrics.Registry) *shardMetrics {
	if r == nil {
		return nil
	}
	return &shardMetrics{
		built:        r.Counter("trail_shard_built_total", "Shards built by this process."),
		retried:      r.Counter("trail_shard_retried_total", "Extra shard build attempts beyond the first."),
		poisoned:     r.Counter("trail_shard_poisoned_total", "Shards that exhausted their attempts."),
		resumed:      r.Counter("trail_shard_resumed_total", "Shards loaded from checkpoints on resume."),
		mergeSeconds: r.Gauge("trail_shard_merge_seconds", "Wall-clock time of the last merge phase."),
		peakHeap:     r.Gauge("trail_shard_peak_heap_bytes", "Peak Go heap observed across shard builds."),
	}
}

// Build runs the full sharded pipeline: plan, supervised parallel build
// with per-shard checkpoints, then the deterministic merge. The returned
// TKG has FinalizeLabels applied and its reordered CSR view warmed.
//
// ctx cancellation stops the build between shards (finished checkpoints
// stay on disk for a later -resume-shards run) and returns ctx.Err().
func Build(ctx context.Context, w *osint.World, cfg Config) (*Result, error) {
	cfg.fill()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("shard: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	specs, parts := Plan(w, cfg.Shards)
	if len(specs) == 0 {
		return nil, fmt.Errorf("shard: empty plan (world has no months)")
	}

	sm := newShardMetrics(cfg.Metrics)
	rep := Report{Shards: len(specs)}
	buildStart := time.Now()

	b := &builder{w: w, cfg: cfg, sm: sm}

	// Resume scan: decide, per shard, whether a trustworthy checkpoint
	// already exists. Corrupt or plan-mismatched files are rebuilt (the
	// atomic envelope makes torn files detectable, not believable).
	todo := make([]int, 0, len(specs))
	for _, s := range specs {
		if cfg.Resume && b.haveCheckpoint(s) {
			rep.Resumed++
			if sm != nil {
				sm.resumed.Inc()
			}
			continue
		}
		todo = append(todo, s.Index)
	}

	// Supervised build pool.
	var (
		mu       sync.Mutex
		firstErr error
	)
	work := make(chan int)
	var wg sync.WaitGroup
	for wk := 0; wk < cfg.Workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				attempts, err := b.buildShard(ctx, specs[i], parts[i])
				mu.Lock()
				if attempts > 1 {
					rep.Retried += attempts - 1
				}
				switch {
				case err == nil:
					rep.Built++
				case errors.Is(err, ErrShardPoisoned):
					rep.Poisoned = append(rep.Poisoned, i)
				default: // ctx cancellation or checkpoint I/O
					if firstErr == nil {
						firstErr = err
					}
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for _, i := range todo {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep.BuildTime = time.Since(buildStart)
	sort.Ints(rep.Poisoned)

	// Merge phase: sorted shard order, persisted bytes only.
	mergeStart := time.Now()
	tkg := core.NewTKG(w, w.Resolver(), cfg.Build)
	for _, s := range specs {
		env, err := b.loadEnvelope(s)
		if err != nil {
			return nil, err
		}
		rep.Pulses += env.Stats.Pulses
		rep.Skipped += env.Stats.Skipped
		if env.Poisoned {
			// A shard poisoned in an earlier run, resumed into this one.
			if !contains(rep.Poisoned, s.Index) {
				mu.Lock()
				rep.Poisoned = append(rep.Poisoned, s.Index)
				sort.Ints(rep.Poisoned)
				mu.Unlock()
			}
			rep.PoisonedPulses += s.Pulses
			continue
		}
		rep.Merged += env.Stats.Merged
		rep.EnrichErrors += env.Stats.EnrichErrors
		sub, err := core.ReadTKGFallible(bytes.NewReader(env.TKG), osint.Infallible(w), w.Resolver())
		if err != nil {
			return nil, fmt.Errorf("shard %d: decode sub-TKG: %w", s.Index, err)
		}
		if _, err := tkg.MergeFrom(sub); err != nil {
			return nil, fmt.Errorf("shard %d: merge: %w", s.Index, err)
		}
	}
	if sm != nil {
		sm.poisoned.Add(uint64(len(rep.Poisoned)))
	}
	tkg.FinalizeLabels()
	rep.Degraded = tkg.Report().Degraded()
	// Warm the cache-aware reordered CSR view so downstream analysis
	// (label propagation, GNN inference) starts from the permuted layout.
	tkg.G.CSRReordered()
	rep.MergeTime = time.Since(mergeStart)
	if sm != nil {
		sm.mergeSeconds.Set(rep.MergeTime.Seconds())
	}
	return &Result{TKG: tkg, Report: rep}, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// builder holds the per-run state shared by the workers.
type builder struct {
	w   *osint.World
	cfg Config
	sm  *shardMetrics

	peakMu   sync.Mutex
	peakHeap uint64
}

// haveCheckpoint reports whether shard s has a valid, plan-matching,
// non-tombstone checkpoint on disk.
func (b *builder) haveCheckpoint(s Spec) bool {
	env, err := b.loadEnvelopeRaw(s)
	return err == nil && !env.Poisoned
}

// loadEnvelopeRaw reads and validates shard s's checkpoint.
func (b *builder) loadEnvelopeRaw(s Spec) (*envelope, error) {
	payload, err := ckpt.Load(ckPath(b.cfg.Dir, s.Index), CheckpointKind, checkpointVersion)
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return nil, fmt.Errorf("shard %d: decode envelope: %w", s.Index, err)
	}
	if env.Spec != s {
		return nil, fmt.Errorf("shard %d: checkpoint is for plan %+v, current plan is %+v (stale -shard-dir?)",
			s.Index, env.Spec, s)
	}
	return &env, nil
}

// loadEnvelope is loadEnvelopeRaw with merge-phase error context.
func (b *builder) loadEnvelope(s Spec) (*envelope, error) {
	env, err := b.loadEnvelopeRaw(s)
	if err != nil {
		return nil, fmt.Errorf("shard %d: load checkpoint: %w", s.Index, err)
	}
	return env, nil
}

// saveEnvelope persists shard s's outcome atomically.
func (b *builder) saveEnvelope(env *envelope) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return fmt.Errorf("shard %d: encode envelope: %w", env.Spec.Index, err)
	}
	if err := ckpt.Save(ckPath(b.cfg.Dir, env.Spec.Index), CheckpointKind, checkpointVersion, buf.Bytes()); err != nil {
		return fmt.Errorf("shard %d: save checkpoint: %w", env.Spec.Index, err)
	}
	return nil
}

// services returns a fresh enrichment stack for one attempt of shard i.
func (b *builder) services(i int) osint.FallibleServices {
	if b.cfg.Services != nil {
		return b.cfg.Services(i)
	}
	return osint.Infallible(b.w)
}

// buildShard supervises the attempts of one shard: chaos gates, panic
// recovery, per-attempt timeout, capped retry with jittered backoff.
// Returns the number of attempts made and nil, ErrShardPoisoned (already
// tombstoned), a context error, or a checkpoint I/O error.
func (b *builder) buildShard(ctx context.Context, s Spec, pulses []osint.Pulse) (int, error) {
	var lastErr error
	made := 0 // attempts actually run (retry accounting)
	for attempt := 1; attempt <= b.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return made, err
		}
		if attempt > 1 {
			if b.sm != nil {
				b.sm.retried.Inc()
			}
			if err := b.backoff(ctx, s.Index, attempt); err != nil {
				return made, err
			}
		}
		if b.cfg.Chaos.poisons(s.Index) {
			lastErr = fmt.Errorf("%w: injected permanent fault", ErrShardPoisoned)
			break
		}
		made++
		env, err := b.attempt(ctx, s, pulses, attempt)
		if err == nil {
			env.Stats.Attempts = attempt
			if err := b.saveEnvelope(env); err != nil {
				return made, err
			}
			if b.sm != nil {
				b.sm.built.Inc()
			}
			b.stepDone(s.Index)
			return made, nil
		}
		if !errors.Is(err, ErrShardFailed) {
			return made, err // context cancellation: leave no tombstone
		}
		lastErr = err
	}
	// Attempts exhausted (or chaos poisoned): tombstone the shard so the
	// merge can account for it and a resume knows to re-attempt it.
	if lastErr == nil || !errors.Is(lastErr, ErrShardPoisoned) {
		lastErr = fmt.Errorf("%w: %v", ErrShardPoisoned, lastErr)
	}
	env := &envelope{
		Spec:     s,
		Stats:    shardStats{Pulses: len(pulses), Attempts: made},
		Poisoned: true,
		Err:      lastErr.Error(),
	}
	if err := b.saveEnvelope(env); err != nil {
		return made, err
	}
	b.stepDone(s.Index)
	return made, lastErr
}

// attempt runs one supervised build of shard s: fresh services, optional
// timeout, panic recovery, chaos transient faults.
func (b *builder) attempt(ctx context.Context, s Spec, pulses []osint.Pulse, n int) (env *envelope, err error) {
	if b.cfg.Chaos.failsAttempt(s.Index, n) {
		return nil, fmt.Errorf("%w: injected transient fault (shard %d attempt %d)", ErrShardFailed, s.Index, n)
	}
	actx := ctx
	if b.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, b.cfg.Timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			env, err = nil, fmt.Errorf("%w: panic: %v (shard %d attempt %d)", ErrShardFailed, r, s.Index, n)
		}
	}()

	tkg := core.NewTKGFallible(b.services(s.Index), b.w.Resolver(), b.cfg.Build)
	if b.cfg.Chaos.panics(s.Index, n) {
		panic(fmt.Sprintf("chaos: injected panic in shard %d", s.Index))
	}
	if _, err := tkg.BuildContext(actx, pulses); err != nil {
		if actx.Err() != nil && ctx.Err() == nil {
			// The per-attempt deadline fired, not the build's context:
			// that is a transient, retryable failure.
			return nil, fmt.Errorf("%w: attempt timeout after %v (shard %d attempt %d)",
				ErrShardFailed, b.cfg.Timeout, s.Index, n)
		}
		return nil, err
	}
	// BuildContext only observes the context between pulses: a
	// cancellation (or attempt deadline) landing inside the final pulse
	// fails the in-flight enrichment lookups fast — degrading nodes — and
	// still returns success. Such a build is tainted and must never be
	// checkpointed, or a killed run's shard would differ from an
	// uninterrupted build and break resume bit-identity.
	if actx.Err() != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: attempt deadline during final pulses (shard %d attempt %d)",
			ErrShardFailed, s.Index, n)
	}
	b.notePeak()

	r := tkg.Report()
	var buf bytes.Buffer
	if _, err := tkg.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("shard %d: serialise sub-TKG: %w", s.Index, err)
	}
	return &envelope{
		Spec: s,
		Stats: shardStats{
			Pulses:       r.Pulses,
			Merged:       r.Merged,
			Skipped:      r.Skipped,
			EnrichErrors: int64(r.EnrichErrors),
			Degraded:     r.Degraded(),
		},
		TKG: buf.Bytes(),
	}, nil
}

// backoff sleeps the capped exponential delay before a retry, with
// deterministic jitter so retry storms across shards decorrelate without
// introducing randomness.
func (b *builder) backoff(ctx context.Context, shard, attempt int) error {
	d := b.cfg.Backoff << uint(attempt-2)
	if max := 10 * b.cfg.Backoff; d > max {
		d = max
	}
	// ±25% deterministic jitter from the shard/attempt hash.
	j := chaosHash(int64(shard), "backoff", "jitter", shard, attempt) % 512
	d += d * time.Duration(int64(j)-256) / 1024
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// stepDone runs the post-checkpoint hooks.
func (b *builder) stepDone(i int) {
	if b.cfg.OnShardDone != nil {
		b.cfg.OnShardDone(i)
	}
	if b.cfg.StepDelay > 0 {
		time.Sleep(b.cfg.StepDelay)
	}
}

// notePeak samples the Go heap and keeps the maximum for the
// trail_shard_peak_heap_bytes gauge.
func (b *builder) notePeak() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.peakMu.Lock()
	if ms.HeapAlloc > b.peakHeap {
		b.peakHeap = ms.HeapAlloc
		if b.sm != nil {
			b.sm.peakHeap.Set(float64(b.peakHeap))
		}
	}
	b.peakMu.Unlock()
}

// PeakHeap reports the highest heap sample seen (exposed for benchmarks).
func (b *builder) PeakHeap() uint64 {
	b.peakMu.Lock()
	defer b.peakMu.Unlock()
	return b.peakHeap
}
