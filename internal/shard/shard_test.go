package shard

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trail/internal/core"
	"trail/internal/graph"
	"trail/internal/labelprop"
	"trail/internal/metrics"
	"trail/internal/osint"
	"trail/internal/sparse"
)

func testWorld() *osint.World { return osint.NewWorld(osint.TestConfig()) }

func baseConfig(t *testing.T) Config {
	return Config{
		Shards:  4,
		Workers: 2,
		Dir:     t.TempDir(),
		Backoff: time.Millisecond,
	}
}

func mustBuild(t *testing.T, w *osint.World, cfg Config) *Result {
	t.Helper()
	res, err := Build(context.Background(), w, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return res
}

func tkgBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := res.TKG.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// TestWorkerCountIndependence: the merged bytes — and every persisted
// shard checkpoint — must not depend on how many workers built them.
func TestWorkerCountIndependence(t *testing.T) {
	w := testWorld()
	cfgA := baseConfig(t)
	cfgA.Workers = 1
	cfgB := baseConfig(t)
	cfgB.Workers = 4

	a := mustBuild(t, w, cfgA)
	b := mustBuild(t, w, cfgB)
	if !bytes.Equal(tkgBytes(t, a), tkgBytes(t, b)) {
		t.Fatal("merged TKG bytes differ between 1-worker and 4-worker builds")
	}
	for i := 0; i < cfgA.Shards; i++ {
		ba, err := os.ReadFile(ckPath(cfgA.Dir, i))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(ckPath(cfgB.Dir, i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("shard %d checkpoint bytes differ between worker counts", i)
		}
	}
	if a.Report.Built != cfgA.Shards || b.Report.Built != cfgB.Shards {
		t.Fatalf("Built = %d/%d, want %d", a.Report.Built, b.Report.Built, cfgA.Shards)
	}
}

// TestKillAtEveryShard is the resume harness from the issue: interrupt
// the build after EVERY k-th shard completion, resume it, and demand the
// final bytes match an uninterrupted run exactly.
func TestKillAtEveryShard(t *testing.T) {
	w := testWorld()
	ref := mustBuild(t, w, baseConfig(t))
	refBytes := tkgBytes(t, ref)
	shards := ref.Report.Shards

	for k := 0; k < shards; k++ {
		dir := t.TempDir()

		cfg := baseConfig(t)
		cfg.Dir = dir
		ctx, cancel := context.WithCancel(context.Background())
		var done atomic.Int64
		var once sync.Once
		cfg.OnShardDone = func(int) {
			if done.Add(1) >= int64(k+1) {
				once.Do(cancel)
			}
		}
		_, err := Build(ctx, w, cfg)
		cancel()
		if k+1 < shards && err == nil {
			t.Fatalf("kill after shard %d: build unexpectedly completed", k)
		}

		resume := baseConfig(t)
		resume.Dir = dir
		resume.Resume = true
		res := mustBuild(t, w, resume)
		if !bytes.Equal(tkgBytes(t, res), refBytes) {
			t.Fatalf("kill after shard %d: resumed bytes differ from uninterrupted run", k)
		}
		if res.Report.Resumed == 0 {
			t.Fatalf("kill after shard %d: nothing resumed (harness did not checkpoint)", k)
		}
		if res.Report.Resumed+res.Report.Built != shards {
			t.Fatalf("kill after shard %d: resumed %d + built %d != %d",
				k, res.Report.Resumed, res.Report.Built, shards)
		}
	}
}

// chaosConfig returns an injector that (for this seed) poisons at least
// one shard and fails/panics several attempts — verified below.
func chaosConfig() *ChaosConfig {
	return &ChaosConfig{Seed: 11, FailRate: 0.35, PanicRate: 0.25, PoisonRate: 0.2}
}

// TestChaosDeterministicAndAccounted: under injected shard failures the
// build must complete, account every pulse exactly once (merged, skipped,
// or lost to a poisoned shard), and produce identical bytes on a rerun —
// the fault schedule is part of the deterministic input.
func TestChaosDeterministicAndAccounted(t *testing.T) {
	w := testWorld()
	mk := func() Config {
		cfg := baseConfig(t)
		cfg.Shards = 6
		cfg.Workers = 3
		cfg.MaxAttempts = 4
		cfg.Chaos = chaosConfig()
		return cfg
	}
	cfgA, cfgB := mk(), mk()
	a := mustBuild(t, w, cfgA)
	b := mustBuild(t, w, cfgB)

	if !bytes.Equal(tkgBytes(t, a), tkgBytes(t, b)) {
		t.Fatal("chaos build not deterministic across runs")
	}
	rep := a.Report
	if len(rep.Poisoned) == 0 {
		t.Fatal("chaos seed poisoned no shard; the test exercises nothing")
	}
	if rep.Retried == 0 {
		t.Fatal("chaos seed caused no retries; the test exercises nothing")
	}
	if rep.Built+len(rep.Poisoned) != rep.Shards {
		t.Fatalf("built %d + poisoned %d != shards %d", rep.Built, len(rep.Poisoned), rep.Shards)
	}
	if rep.Pulses != len(w.Pulses()) {
		t.Fatalf("accounted pulses %d != world pulses %d", rep.Pulses, len(w.Pulses()))
	}
	if rep.Merged+rep.Skipped+rep.PoisonedPulses != rep.Pulses {
		t.Fatalf("merged %d + skipped %d + poisoned %d != pulses %d",
			rep.Merged, rep.Skipped, rep.PoisonedPulses, rep.Pulses)
	}
	if got := len(a.TKG.EventNodes()); got != rep.Merged {
		t.Fatalf("graph has %d events, report says %d merged", got, rep.Merged)
	}

	// Poisoned shards left tombstones, not corrupt files: every
	// checkpoint in the dir must load cleanly.
	specs, _ := Plan(w, cfgA.Shards)
	bd := &builder{w: w, cfg: cfgA}
	for _, s := range specs {
		env, err := bd.loadEnvelopeRaw(s)
		if err != nil {
			t.Fatalf("shard %d checkpoint unreadable after chaos: %v", s.Index, err)
		}
		if env.Poisoned != contains(rep.Poisoned, s.Index) {
			t.Fatalf("shard %d tombstone flag %v disagrees with report %v",
				s.Index, env.Poisoned, rep.Poisoned)
		}
	}
}

// TestChaosKillResumeBitIdentical: interrupting a chaos build and
// resuming it (which re-attempts tombstoned shards — they re-poison
// identically) must still converge to the uninterrupted bytes.
func TestChaosKillResumeBitIdentical(t *testing.T) {
	w := testWorld()
	mk := func(dir string) Config {
		cfg := baseConfig(t)
		cfg.Dir = dir
		cfg.Shards = 6
		cfg.Workers = 2
		cfg.MaxAttempts = 4
		cfg.Chaos = chaosConfig()
		return cfg
	}
	ref := mustBuild(t, w, mk(t.TempDir()))

	dir := t.TempDir()
	cfg := mk(dir)
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	var done atomic.Int64
	cfg.OnShardDone = func(int) {
		if done.Add(1) >= 2 {
			once.Do(cancel)
		}
	}
	Build(ctx, w, cfg) // interrupted (or complete — either is fine)
	cancel()

	resume := mk(dir)
	resume.Resume = true
	res := mustBuild(t, w, resume)
	if !bytes.Equal(tkgBytes(t, res), tkgBytes(t, ref)) {
		t.Fatal("chaos build resumed after kill differs from uninterrupted run")
	}
	if len(res.Report.Poisoned) != len(ref.Report.Poisoned) {
		t.Fatalf("resumed run poisoned %v, uninterrupted %v", res.Report.Poisoned, ref.Report.Poisoned)
	}
}

// TestTransientEnrichmentAbsorbed: a per-shard resilient services stack
// facing transient-only enrichment faults must produce bytes identical to
// a clean build — the retries hide the faults entirely, shard by shard.
func TestTransientEnrichmentAbsorbed(t *testing.T) {
	w := testWorld()
	clean := mustBuild(t, w, baseConfig(t))

	cfg := baseConfig(t)
	cfg.Services = func(shard int) osint.FallibleServices {
		clock := osint.NewManualClock(time.Unix(0, 0)).AutoAdvance(time.Millisecond)
		cc := osint.ChaosConfig{
			Seed:                    100 + int64(shard),
			TransientRate:           0.2,
			MaxConsecutiveTransient: 3,
			Clock:                   clock,
		}
		rcfg := osint.DefaultResilienceConfig()
		rcfg.Clock = clock
		rcfg.MaxAttempts = 5
		return osint.NewResilientServices(osint.NewChaosServices(w, cc), rcfg)
	}
	faulty := mustBuild(t, w, cfg)

	if !bytes.Equal(tkgBytes(t, clean), tkgBytes(t, faulty)) {
		t.Fatal("transient enrichment faults leaked into the merged bytes")
	}
	if faulty.Report.EnrichErrors != 0 {
		t.Fatalf("transient-only chaos left %d enrichment errors", faulty.Report.EnrichErrors)
	}
}

// TestStalePlanRebuilt: checkpoints from a different shard plan must be
// ignored (rebuilt), not merged or trusted.
func TestStalePlanRebuilt(t *testing.T) {
	w := testWorld()
	dir := t.TempDir()

	cfg := baseConfig(t)
	cfg.Dir = dir
	cfg.Shards = 2
	mustBuild(t, w, cfg)

	// Same dir, different plan: resume must rebuild everything.
	cfg2 := baseConfig(t)
	cfg2.Dir = dir
	cfg2.Shards = 4
	cfg2.Resume = true
	res := mustBuild(t, w, cfg2)
	if res.Report.Resumed != 0 {
		t.Fatalf("resumed %d shards from a stale plan", res.Report.Resumed)
	}

	fresh := baseConfig(t)
	fresh.Shards = 4
	want := mustBuild(t, w, fresh)
	if !bytes.Equal(tkgBytes(t, res), tkgBytes(t, want)) {
		t.Fatal("build over a stale checkpoint dir differs from a fresh build")
	}
}

// TestCorruptCheckpointRebuilt: a torn/corrupted shard checkpoint is
// detected by the envelope CRC and rebuilt on resume, never believed.
func TestCorruptCheckpointRebuilt(t *testing.T) {
	w := testWorld()
	cfg := baseConfig(t)
	mustBuild(t, w, cfg)

	path := ckPath(cfg.Dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	resume := cfg
	resume.Resume = true
	res := mustBuild(t, w, resume)
	if res.Report.Built != 1 || res.Report.Resumed != cfg.Shards-1 {
		t.Fatalf("corrupt checkpoint: built %d resumed %d, want 1/%d",
			res.Report.Built, res.Report.Resumed, cfg.Shards-1)
	}
	clean := mustBuild(t, w, baseConfig(t))
	if !bytes.Equal(tkgBytes(t, res), tkgBytes(t, clean)) {
		t.Fatal("rebuild after corruption differs from clean build")
	}
}

// TestMetricsFamily: the trail_shard_* counters must reflect the report.
func TestMetricsFamily(t *testing.T) {
	w := testWorld()
	reg := metrics.NewRegistry()
	cfg := baseConfig(t)
	cfg.Shards = 6
	cfg.MaxAttempts = 4
	cfg.Chaos = chaosConfig()
	cfg.Metrics = reg
	res := mustBuild(t, w, cfg)

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"trail_shard_merge_seconds", "trail_shard_peak_heap_bytes",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Fatalf("registry output missing %s:\n%s", name, out)
		}
	}
	// Counters must render the report's exact values.
	for _, want := range []string{
		fmt.Sprintf("trail_shard_built_total %d", res.Report.Built),
		fmt.Sprintf("trail_shard_retried_total %d", res.Report.Retried),
		fmt.Sprintf("trail_shard_poisoned_total %d", len(res.Report.Poisoned)),
		fmt.Sprintf("trail_shard_resumed_total %d", res.Report.Resumed),
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("registry output missing %q:\n%s", want, out)
		}
	}
}

// TestReorderedMergedCSR (satellite): running label propagation over the
// merged graph through the degree-reordered CSR view must be bit-identical
// to the unreordered path — locality is a layout change, not a numeric one.
func TestReorderedMergedCSR(t *testing.T) {
	defer func(old int) { sparse.ReorderMinRows = old }(sparse.ReorderMinRows)

	w := testWorld()

	sparse.ReorderMinRows = 1 << 30 // plain layout
	plain := mustBuild(t, w, baseConfig(t))

	sparse.ReorderMinRows = 1 // force the permuted view
	reord := mustBuild(t, w, baseConfig(t))

	if !bytes.Equal(tkgBytes(t, plain), tkgBytes(t, reord)) {
		t.Fatal("CSR reordering changed the serialised TKG (it must be a view, not a mutation)")
	}

	seeds := make(map[graph.NodeID]int)
	for _, ev := range plain.TKG.EventNodes() {
		seeds[ev] = plain.TKG.G.Node(ev).Label
	}
	classes := 22
	pPlain := labelprop.PropagateCSR(plain.TKG.G.CSR(), seeds, classes, 4)

	seedsR := make(map[graph.NodeID]int)
	for _, ev := range reord.TKG.EventNodes() {
		seedsR[ev] = reord.TKG.G.Node(ev).Label
	}
	csr, perm := reord.TKG.G.CSRReordered()
	if perm == nil && csr.Rows >= sparse.ReorderMinRows {
		t.Log("reordered view is identity for this graph (degree-sorted already)")
	}
	pReord := labelprop.PropagateCSR(reord.TKG.G.CSR(), seedsR, classes, 4)

	if pPlain.Rows != pReord.Rows || pPlain.Cols != pReord.Cols {
		t.Fatalf("shape mismatch %dx%d vs %dx%d", pPlain.Rows, pPlain.Cols, pReord.Rows, pReord.Cols)
	}
	for i := range pPlain.Data {
		if pPlain.Data[i] != pReord.Data[i] {
			t.Fatalf("label propagation differs at %d: %v vs %v (reordered CSR must be bit-identical)",
				i, pPlain.Data[i], pReord.Data[i])
		}
	}
}

// TestDuplicatePulsePlanFailsMerge: feeding overlapping pulse sets to two
// shards must surface core.ErrDuplicate from the merge, not silently
// double-count events. (Build plans are disjoint by construction; this
// pins the guard rail itself via a handcrafted overlap.)
func TestDuplicatePulsePlanFailsMerge(t *testing.T) {
	w := testWorld()
	cfg := baseConfig(t)
	cfg.Shards = 1
	cfg.fill()
	b := &builder{w: w, cfg: cfg}
	specs, parts := Plan(w, 1)
	env, err := b.attempt(context.Background(), specs[0], parts[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := core.ReadTKGFallible(bytes.NewReader(env.TKG), osint.Infallible(w), w.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	dst := core.NewTKG(w, w.Resolver(), cfg.Build)
	if _, err := dst.MergeFrom(sub); err != nil {
		t.Fatal(err)
	}
	sub2, err := core.ReadTKGFallible(bytes.NewReader(env.TKG), osint.Infallible(w), w.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.MergeFrom(sub2); err == nil {
		t.Fatal("overlapping shard pulses merged without error")
	}
}

// TestPlanClamp: more shards than months clamps; specs line up with
// window pulse counts.
func TestPlanClamp(t *testing.T) {
	w := testWorld() // 8 months
	specs, parts := Plan(w, 100)
	if len(specs) != 8 {
		t.Fatalf("plan %d shards for 8 months", len(specs))
	}
	total := 0
	for i, s := range specs {
		if s.Index != i || s.Pulses != len(parts[i]) {
			t.Fatalf("spec %d inconsistent: %+v with %d pulses", i, s, len(parts[i]))
		}
		total += s.Pulses
	}
	if total != len(w.Pulses()) {
		t.Fatalf("plan covers %d pulses, world has %d", total, len(w.Pulses()))
	}
}
