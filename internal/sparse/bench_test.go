package sparse

import (
	"math/rand"
	"testing"

	"trail/internal/mat"
)

// Micro-benchmarks for the CSR kernels: SpMMInto and the fused SAGE
// layer must report 0 allocs/op in steady state.

func benchOperator(b *testing.B, n, edges int) *Matrix {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	return FromAdj(randAdj(rng, n, edges)).MeanNormalized()
}

func BenchmarkSpMMInto(b *testing.B) {
	b.ReportAllocs()
	s := benchOperator(b, 5000, 20000)
	rng := rand.New(rand.NewSource(10))
	x := randFeatures(rng, 5000, 64)
	dst := mat.New(5000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpMMInto(dst, x)
	}
}

func BenchmarkSpMMTransInto(b *testing.B) {
	b.ReportAllocs()
	s := benchOperator(b, 5000, 20000)
	rng := rand.New(rand.NewSource(11))
	x := randFeatures(rng, 5000, 64)
	dst := mat.New(5000, 64)
	s.SpMMTransInto(dst, x) // build the cached transpose outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpMMTransInto(dst, x)
	}
}

func BenchmarkSAGELayerInto(b *testing.B) {
	b.ReportAllocs()
	s := benchOperator(b, 5000, 20000)
	rng := rand.New(rand.NewSource(12))
	x := randFeatures(rng, 5000, 64)
	wMean := randFeatures(rng, 64, 64)
	wSelf := randFeatures(rng, 64, 64)
	bias := make([]float64, 64)
	dst := mat.New(5000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SAGELayerInto(dst, x, wMean, wSelf, bias)
	}
}

// BenchmarkSAGELayerComposed is the three-kernel path SAGELayerInto
// replaces, for the fused-vs-composed comparison in EXPERIMENTS.md.
func BenchmarkSAGELayerComposed(b *testing.B) {
	b.ReportAllocs()
	s := benchOperator(b, 5000, 20000)
	rng := rand.New(rand.NewSource(12))
	x := randFeatures(rng, 5000, 64)
	wMean := randFeatures(rng, 64, 64)
	wSelf := randFeatures(rng, 64, 64)
	bias := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = composedSAGELayer(s, x, wMean, wSelf, bias)
	}
}
