package sparse

import (
	"math/rand"
	"testing"

	"trail/internal/mat"
)

// Micro-benchmarks for the CSR kernels: SpMMInto and the fused SAGE
// layer must report 0 allocs/op in steady state.

func benchOperator(b *testing.B, n, edges int) *Matrix {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	return FromAdj(randAdj(rng, n, edges)).MeanNormalized()
}

func BenchmarkSpMMInto(b *testing.B) {
	b.ReportAllocs()
	s := benchOperator(b, 5000, 20000)
	rng := rand.New(rand.NewSource(10))
	x := randFeatures(rng, 5000, 64)
	dst := mat.New(5000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpMMInto(dst, x)
	}
}

func BenchmarkSpMMTransInto(b *testing.B) {
	b.ReportAllocs()
	s := benchOperator(b, 5000, 20000)
	rng := rand.New(rand.NewSource(11))
	x := randFeatures(rng, 5000, 64)
	dst := mat.New(5000, 64)
	s.SpMMTransInto(dst, x) // build the cached transpose outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpMMTransInto(dst, x)
	}
}

func BenchmarkSAGELayerInto(b *testing.B) {
	b.ReportAllocs()
	s := benchOperator(b, 5000, 20000)
	rng := rand.New(rand.NewSource(12))
	x := randFeatures(rng, 5000, 64)
	wMean := randFeatures(rng, 64, 64)
	wSelf := randFeatures(rng, 64, 64)
	bias := make([]float64, 64)
	dst := mat.New(5000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SAGELayerInto(dst, x, wMean, wSelf, bias)
	}
}

// BenchmarkSAGELayerComposed is the three-kernel path SAGELayerInto
// replaces, for the fused-vs-composed comparison in EXPERIMENTS.md.
func BenchmarkSAGELayerComposed(b *testing.B) {
	b.ReportAllocs()
	s := benchOperator(b, 5000, 20000)
	rng := rand.New(rand.NewSource(12))
	x := randFeatures(rng, 5000, 64)
	wMean := randFeatures(rng, 64, 64)
	wSelf := randFeatures(rng, 64, 64)
	bias := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = composedSAGELayer(s, x, wMean, wSelf, bias)
	}
}

// BenchmarkSpMMInto32 is BenchmarkSpMMInto at float32: half the bytes
// per gathered element, same CSR structure.
func BenchmarkSpMMInto32(b *testing.B) {
	b.ReportAllocs()
	s := Cast[float32](FromAdj(randAdj(rand.New(rand.NewSource(9)), 5000, 20000))).MeanNormalized()
	rng := rand.New(rand.NewSource(10))
	x := mat.Cast[float32](randFeatures(rng, 5000, 64))
	dst := mat.NewOf[float32](5000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpMMInto(dst, x)
	}
}

// hubAdj builds a scale-free-ish adjacency: a small set of hub vertices
// (at scattered IDs, so insertion order is far from degree order)
// collects most of the edges — the TKG's "common public IP" shape that
// the degree-descending reordering targets.
func hubAdj(rng *rand.Rand, n, edges, hubs int) [][]int32 {
	hubID := make([]int, hubs)
	for i := range hubID {
		hubID[i] = rng.Intn(n)
	}
	adj := make([][]int32, n)
	for e := 0; e < edges; e++ {
		u, v := hubID[rng.Intn(hubs)], rng.Intn(n)
		if u == v {
			continue
		}
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
	}
	return adj
}

// BenchmarkSpMMIntoHub / BenchmarkSpMMIntoHubReordered measure the
// cache effect of the degree-descending relabelling on a hub-heavy
// graph: identical operator and features, original vs permuted vertex
// order. The reordered run includes no gather/scatter — it measures the
// steady-state SpMM the permuted pipelines run per layer.
func BenchmarkSpMMIntoHub(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(13))
	s := FromAdj(hubAdj(rng, 40000, 160000, 64)).MeanNormalized()
	x := randFeatures(rng, 40000, 64)
	dst := mat.New(40000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpMMInto(dst, x)
	}
}

func BenchmarkSpMMIntoHubReordered(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(13))
	raw := FromAdj(hubAdj(rng, 40000, 160000, 64))
	rs, p := raw.Reordered()
	if p == nil {
		b.Fatal("reordering inactive on the hub graph")
	}
	s := rs.MeanNormalized()
	x := GatherRowsInto(p, mat.New(40000, 64), randFeatures(rng, 40000, 64))
	dst := mat.New(40000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpMMInto(dst, x)
	}
}

// The float32 hub pair isolates the combined effect: halving the
// element size doubles the cache-resident hub prefix, so the
// reordering's win compounds with the precision change.
func BenchmarkSpMMIntoHub32(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(13))
	s := Cast[float32](FromAdj(hubAdj(rng, 40000, 160000, 64))).MeanNormalized()
	x := mat.Cast[float32](randFeatures(rng, 40000, 64))
	dst := mat.NewOf[float32](40000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpMMInto(dst, x)
	}
}

func BenchmarkSpMMIntoHubReordered32(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(13))
	raw := Cast[float32](FromAdj(hubAdj(rng, 40000, 160000, 64)))
	rs, p := raw.Reordered()
	if p == nil {
		b.Fatal("reordering inactive on the hub graph")
	}
	s := rs.MeanNormalized()
	x := GatherRowsInto(p, mat.NewOf[float32](40000, 64), mat.Cast[float32](randFeatures(rng, 40000, 64)))
	dst := mat.NewOf[float32](40000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpMMInto(dst, x)
	}
}
