package sparse

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"trail/internal/mat"
)

// TestLazyCachesConcurrentFirstUse hammers every lazily-built cache on a
// fresh CSR — the tOnce transpose, the three normalisation caches and
// the reordering cache — from many goroutines at once, asserting they
// all observe the same cached object and (under -race) that first-use
// publication is clean. `trail serve` will hit exactly this pattern:
// one shared CSR snapshot, many request goroutines deriving operators.
func TestLazyCachesConcurrentFirstUse(t *testing.T) {
	defer func(old int) { ReorderMinRows = old }(ReorderMinRows)
	ReorderMinRows = 10

	rng := rand.New(rand.NewSource(41))
	adj := randAdj(rng, 200, 600)
	x := mat.RandUniform(rng, 200, 6, 1)

	const goroutines = 16
	s := FromAdj(adj)
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		syms  [goroutines]*Matrix
		loops [goroutines]*Matrix
		means [goroutines]*Matrix
		reord [goroutines]*Matrix
		trans [goroutines]*mat.Matrix
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			syms[g] = s.SymNormalized()
			loops[g] = s.SymNormalizedWithSelfLoops()
			means[g] = s.MeanNormalized()
			reord[g], _ = s.Reordered()
			// SpMMTrans builds the tOnce transpose on first use; doing a
			// real multiply also exercises the sargs pool concurrently.
			trans[g] = s.MulTrans(x)
		}(g)
	}
	close(start)
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		if syms[g] != syms[0] || loops[g] != loops[0] || means[g] != means[0] || reord[g] != reord[0] {
			t.Fatalf("goroutine %d observed a different cached operator", g)
		}
		for i := range trans[0].Data {
			if math.Float64bits(trans[g].Data[i]) != math.Float64bits(trans[0].Data[i]) {
				t.Fatalf("concurrent SpMMTrans diverged at goroutine %d index %d", g, i)
			}
		}
	}
}

// TestLazyCachesConcurrentFloat32 repeats the concurrent first-use check
// at the float32 instantiation, whose caches are distinct generic code.
func TestLazyCachesConcurrentFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := Cast[float32](FromAdj(randAdj(rng, 150, 450)))
	x := mat.RandUniformOf[float32](rng, 150, 5, 1)

	const goroutines = 12
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		means [goroutines]*CSR[float32]
		outs  [goroutines]*mat.Matrix32
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			means[g] = s.MeanNormalized()
			outs[g] = means[g].MulTrans(x)
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if means[g] != means[0] {
			t.Fatalf("goroutine %d observed a different cached float32 operator", g)
		}
		for i := range outs[0].Data {
			if outs[g].Data[i] != outs[0].Data[i] {
				t.Fatalf("concurrent float32 SpMMTrans diverged at goroutine %d index %d", g, i)
			}
		}
	}
}
