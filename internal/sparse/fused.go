package sparse

import (
	"fmt"
	"sync"

	"trail/internal/mat"
	"trail/internal/par"
)

// SAGELayerInto is the fused GraphSAGE layer kernel: for every node i it
// computes, in one pass and without materialising the n×d neighbour-mean
// matrix,
//
//	dst[i] = mean_{j∈N(i)}(x[j]) · wMean + bias + x[i] · wSelf,
//
// where the mean is the receiver's normalisation (typically a
// MeanNormalized CSR, i.e. normalise + aggregate fused through RowScale).
// This is the inference path of gnn.Model: training keeps the composed
// kernels because backprop needs the aggregated activations.
//
// Bit-identity: per row, the neighbour aggregation runs in CSR entry
// order then scales (exactly SpMMInto); the two matmul accumulations run
// in ascending-k order with the same zero-skip as MatMulInto, each from
// a zeroed accumulator; bias is added between them. That is the exact
// grouping of the composed path
//
//	z := MatMul(SpMM(s,x), wMean); z.AddRowVector(bias); AddInPlace(z, MatMul(x, wSelf))
//
// so fused and composed results match bit for bit at any parallelism
// (asserted in fused_test.go and internal/gnn's equivalence tests).
//
// dst must be s.Rows × wMean.Cols and must not alias x. The receiver
// must be square with s.Rows == x.Rows; wMean and wSelf are
// x.Cols × dst.Cols; bias has length dst.Cols.
func (s *CSR[T]) SAGELayerInto(dst, x, wMean, wSelf *mat.Dense[T], bias []T) {
	if s.Rows != s.Cols || s.Cols != x.Rows {
		panic(fmt.Sprintf("sparse: SAGELayerInto operator %dx%d over %d-row features", s.Rows, s.Cols, x.Rows))
	}
	if wMean.Rows != x.Cols || wSelf.Rows != x.Cols || wMean.Cols != wSelf.Cols {
		panic(fmt.Sprintf("sparse: SAGELayerInto weights (%dx%d, %dx%d) for width-%d features",
			wMean.Rows, wMean.Cols, wSelf.Rows, wSelf.Cols, x.Cols))
	}
	if dst.Rows != s.Rows || dst.Cols != wMean.Cols {
		panic(fmt.Sprintf("sparse: SAGELayerInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, s.Rows, wMean.Cols))
	}
	if len(bias) != dst.Cols {
		panic(fmt.Sprintf("sparse: SAGELayerInto bias length %d != %d", len(bias), dst.Cols))
	}
	if dst == x || (len(dst.Data) > 0 && len(x.Data) > 0 && &dst.Data[0] == &x.Data[0]) {
		panic("sparse: SAGELayerInto dst must not alias x")
	}
	din, dout := x.Cols, dst.Cols
	body := func(lo, hi int) {
		// Per-block scratch: one mean row (din) and one self-path
		// accumulator row (dout), pooled so steady-state runs allocation
		// free.
		scr, scrPool := getScratch[T]()
		meanrow := scr.grow(din + dout)
		srow := meanrow[din : din+dout]
		meanrow = meanrow[:din]
		for i := lo; i < hi; i++ {
			// Normalise + aggregate (the SpMMInto row body).
			clear(meanrow)
			for k, e := s.RowPtr[i], s.End(i); k < e; k++ {
				mat.Axpy(s.Val[k], x.Row(int(s.ColIdx[k])), meanrow)
			}
			if s.RowScale != nil {
				if sc := s.RowScale[i]; sc != 1 {
					for j := range meanrow {
						meanrow[j] *= sc
					}
				}
			}
			// meanrow · wMean (ikj with zero-skip, like MatMulInto).
			drow := dst.Row(i)
			clear(drow)
			for k, mv := range meanrow {
				if mv == 0 {
					continue
				}
				mat.Axpy(mv, wMean.Row(k), drow)
			}
			for j, b := range bias {
				drow[j] += b
			}
			// Self path from its own zeroed accumulator, then one add —
			// the same grouping as computing MatMul(x, wSelf) separately
			// and AddInPlace-ing it.
			clear(srow)
			xrow := x.Row(i)
			for k, xv := range xrow {
				if xv == 0 {
					continue
				}
				mat.Axpy(xv, wSelf.Row(k), srow)
			}
			for j, v := range srow {
				drow[j] += v
			}
		}
		if scrPool != nil {
			scrPool.Put(scr)
		}
	}
	work := (s.NNZ() + s.Rows) * din * dout
	if work < minParFlops {
		body(0, s.Rows)
		return
	}
	perRow := work/s.Rows + 1
	grain := grainFlops / perRow
	if grain < 1 {
		grain = 1
	}
	par.For(s.Rows, grain, body)
}

// scratch is a grow-only buffer recycled across kernel blocks, one pool
// per concrete element type.
type scratch[T mat.Float] struct{ buf []T }

func (s *scratch[T]) grow(n int) []T {
	if cap(s.buf) < n {
		s.buf = make([]T, n)
	}
	return s.buf[:n]
}

var (
	scratchPool64 = sync.Pool{New: func() any { return &scratch[float64]{} }}
	scratchPool32 = sync.Pool{New: func() any { return &scratch[float32]{} }}
)

// getScratch borrows a scratch buffer and reports the pool to return it
// to (nil for exotic element types, which allocate fresh).
func getScratch[T mat.Float]() (*scratch[T], *sync.Pool) {
	switch any(T(0)).(type) {
	case float64:
		return scratchPool64.Get().(*scratch[T]), &scratchPool64
	case float32:
		return scratchPool32.Get().(*scratch[T]), &scratchPool32
	}
	return &scratch[T]{}, nil
}
