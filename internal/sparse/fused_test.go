package sparse

import (
	"math"
	"math/rand"
	"testing"

	"trail/internal/mat"
	"trail/internal/par"
)

func randFeatures(rng *rand.Rand, rows, cols int) *mat.Matrix {
	x := mat.New(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

// composedSAGELayer is the three-kernel path SAGELayerInto fuses:
// aggregate, transform, bias, self path.
func composedSAGELayer(s *Matrix, x, wMean, wSelf *mat.Matrix, bias []float64) *mat.Matrix {
	z := mat.MatMul(s.Mul(x), wMean)
	z.AddRowVector(bias)
	return mat.AddInPlace(z, mat.MatMul(x, wSelf))
}

func TestSAGELayerIntoMatchesComposedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, din, dout := 60, 12, 8
	s := FromAdj(randAdj(rng, n, 150)).MeanNormalized()
	x := randFeatures(rng, n, din)
	wMean := randFeatures(rng, din, dout)
	wSelf := randFeatures(rng, din, dout)
	bias := make([]float64, dout)
	for j := range bias {
		bias[j] = rng.NormFloat64()
	}
	want := composedSAGELayer(s, x, wMean, wSelf, bias)

	// Dirty destination: the kernel must fully overwrite it (the GetDirty
	// contract), at any worker count.
	for _, workers := range []int{1, 4} {
		prev := par.SetWorkers(workers)
		got := mat.New(n, dout)
		got.Fill(math.Inf(1))
		s.SAGELayerInto(got, x, wMean, wSelf, bias)
		par.SetWorkers(prev)
		for i := range want.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("workers=%d: Data[%d] = %v, want %v", workers, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestSAGELayerIntoShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := FromAdj(randAdj(rng, 10, 20))
	x := randFeatures(rng, 10, 4)
	w := randFeatures(rng, 4, 3)
	bias := make([]float64, 3)
	cases := []struct {
		name string
		f    func()
	}{
		{"bad dst", func() { s.SAGELayerInto(mat.New(9, 3), x, w, w, bias) }},
		{"bad bias", func() { s.SAGELayerInto(mat.New(10, 3), x, w, w, bias[:2]) }},
		{"bad weights", func() { s.SAGELayerInto(mat.New(10, 3), x, randFeatures(rng, 5, 3), w, bias) }},
		{"aliased dst", func() { s.SAGELayerInto(x, x, randFeatures(rng, 4, 4), randFeatures(rng, 4, 4), make([]float64, 4)) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestSpMMIntoOverwritesDirtyDst(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := FromAdj(randAdj(rng, 30, 80)).SymNormalized()
	x := randFeatures(rng, 30, 6)
	want := s.Mul(x)
	got := mat.New(30, 6)
	got.Fill(math.NaN())
	s.SpMMInto(got, x)
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("Data[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestSpMMIntoSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	rng := rand.New(rand.NewSource(8))
	s := FromAdj(randAdj(rng, 40, 100)).MeanNormalized()
	x := randFeatures(rng, 40, 8)
	dst := mat.New(40, 8)
	s.SpMMInto(dst, x) // warm the transpose/operator caches
	if allocs := testing.AllocsPerRun(50, func() { s.SpMMInto(dst, x) }); allocs != 0 {
		t.Fatalf("SpMMInto allocates %v times per call", allocs)
	}
}
