package sparse

import "sync"

// Unweighted adjacency matrices dominate this package's traffic — the
// graph engine emits one per ingest cut — and their value arrays are,
// by construction, all ones. Materialising a fresh nnz-sized array of
// 1s per snapshot (and again per element-type cast and per permuted
// view) is pure allocator and memset load, so all-ones value arrays are
// instead served from a grow-only shared pool, one backing array per
// element type. Pool slices are immutable by contract: every CSR is
// immutable after construction, so sharing is invisible to callers.
//
// Constructors record all-ones provenance in CSR.valOnes (set only when
// the values are all ones BY CONSTRUCTION, i.e. a nil val argument —
// never by scanning), and Cast/Permute consult it to skip the
// element-wise copy: converting or gathering a vector of 1s yields a
// vector of 1s at any element type, bit-for-bit.
var (
	onesMu sync.Mutex
	ones64 []float64
	ones32 []float32
)

// onesSlice returns a shared, immutable, length-n all-ones slice. For
// exotic Float instantiations (defined types) it falls back to a fresh
// allocation.
func onesSlice[T interface{ ~float32 | ~float64 }](n int) []T {
	onesMu.Lock()
	defer onesMu.Unlock()
	switch any(T(1)).(type) {
	case float64:
		if len(ones64) < n {
			ones64 = freshOnes[float64](roundPow2(n))
		}
		return any(ones64[:n:n]).([]T)
	case float32:
		if len(ones32) < n {
			ones32 = freshOnes[float32](roundPow2(n))
		}
		return any(ones32[:n:n]).([]T)
	default:
		return freshOnes[T](n)
	}
}

func freshOnes[T interface{ ~float32 | ~float64 }](n int) []T {
	v := make([]T, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func roundPow2(n int) int {
	p := 1024
	for p < n {
		p <<= 1
	}
	return p
}
