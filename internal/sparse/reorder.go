package sparse

import (
	"fmt"
	"sort"

	"trail/internal/mat"
)

// Cache-aware CSR reordering (DESIGN.md §3f).
//
// SpMM's memory behaviour is dominated by the gathers x.Row(ColIdx[k]):
// on a scale-free threat graph the hub vertices are referenced from
// almost every row, but under insertion order their feature rows are
// scattered across the full x matrix. A degree-descending relabelling
// packs the hubs into the first rows of x, so the rows that serve the
// overwhelming majority of gathers share a small, cache-resident prefix.
//
// The transformation is exact, not approximate: Permute preserves the
// entry order within every row, so row r of the permuted operator is
// row Perm[r] of the original with columns relabelled — the same values
// accumulated in the same order. Run any row-local kernel (SpMM, the
// normalisation constructors, SAGELayerInto) in permuted space on
// permuted inputs and row r of the result is bit-identical to row
// Perm[r] of the unpermuted result; scattering rows back through Perm
// reproduces the original-order output exactly. That is what lets
// labelprop and GNN inference adopt the reordering without disturbing
// any of the bit-identity equivalence suites.

// Permutation is a vertex relabelling: Perm[new] = old (the gather map)
// and Inv[old] = new (the scatter map). Both directions are stored
// because hot paths need gathers and scatters without re-inversion.
type Permutation struct {
	Perm []int32
	Inv  []int32
}

// NewPermutation builds a Permutation from a Perm[new] = old mapping,
// deriving the inverse. It panics if perm is not a permutation of its
// index range.
func NewPermutation(perm []int32) *Permutation {
	inv := make([]int32, len(perm))
	for i := range inv {
		inv[i] = -1
	}
	for n, o := range perm {
		if o < 0 || int(o) >= len(perm) || inv[o] != -1 {
			panic(fmt.Sprintf("sparse: NewPermutation: invalid or duplicate image %d at %d", o, n))
		}
		inv[o] = int32(n)
	}
	return &Permutation{Perm: perm, Inv: inv}
}

// Len returns the number of vertices the permutation covers.
func (p *Permutation) Len() int { return len(p.Perm) }

// IsIdentity reports whether the permutation maps every vertex to itself.
func (p *Permutation) IsIdentity() bool {
	for n, o := range p.Perm {
		if int(o) != n {
			return false
		}
	}
	return true
}

// GatherRowsInto writes src rows into dst in permuted order:
// dst.Row(new) = src.Row(Perm[new]). Used to carry original-order inputs
// (features, seed labels) into permuted space.
func GatherRowsInto[T mat.Float](p *Permutation, dst, src *mat.Dense[T]) *mat.Dense[T] {
	if dst.Rows != len(p.Perm) || src.Rows != len(p.Perm) || dst.Cols != src.Cols {
		panic(fmt.Sprintf("sparse: GatherRowsInto %dx%d from %dx%d under %d-vertex permutation",
			dst.Rows, dst.Cols, src.Rows, src.Cols, len(p.Perm)))
	}
	for n, o := range p.Perm {
		copy(dst.Row(n), src.Row(int(o)))
	}
	return dst
}

// ScatterRowsInto writes src rows back into original order:
// dst.Row(Perm[new]) = src.Row(new). Used to emit permuted-space results
// (propagated labels, logits, embeddings) in original vertex order.
func ScatterRowsInto[T mat.Float](p *Permutation, dst, src *mat.Dense[T]) *mat.Dense[T] {
	if dst.Rows != len(p.Perm) || src.Rows != len(p.Perm) || dst.Cols != src.Cols {
		panic(fmt.Sprintf("sparse: ScatterRowsInto %dx%d from %dx%d under %d-vertex permutation",
			dst.Rows, dst.Cols, src.Rows, src.Cols, len(p.Perm)))
	}
	for n, o := range p.Perm {
		copy(dst.Row(int(o)), src.Row(n))
	}
	return dst
}

// GatherInts returns src reindexed into permuted space:
// out[new] = src[Perm[new]].
func (p *Permutation) GatherInts(src []int) []int {
	out := make([]int, len(p.Perm))
	for n, o := range p.Perm {
		out[n] = src[int(o)]
	}
	return out
}

// GatherBools is GatherInts for a bool vector.
func (p *Permutation) GatherBools(src []bool) []bool {
	out := make([]bool, len(p.Perm))
	for n, o := range p.Perm {
		out[n] = src[int(o)]
	}
	return out
}

// DegreePermutation returns the degree-descending relabelling of s's
// rows (ties keep their original relative order, so the result is
// deterministic). The receiver must be square.
func (s *CSR[T]) DegreePermutation() *Permutation {
	if s.Rows != s.Cols {
		panic(fmt.Sprintf("sparse: DegreePermutation on non-square %dx%d matrix", s.Rows, s.Cols))
	}
	perm := make([]int32, s.Rows)
	for i := range perm {
		perm[i] = int32(i)
	}
	deg := func(i int32) int { return s.End(int(i)) - s.RowPtr[i] }
	sort.SliceStable(perm, func(a, b int) bool { return deg(perm[a]) > deg(perm[b]) })
	return NewPermutation(perm)
}

// Permute returns the permuted view of a square s: row new of the result
// is row Perm[new] of s with every column index relabelled through Inv.
// Entry order within each row is preserved (source order), which is what
// makes the permuted kernels bit-identical row-for-row — see the file
// comment. RowScale, if present, is carried row-wise.
func (s *CSR[T]) Permute(p *Permutation) *CSR[T] {
	if s.Rows != s.Cols {
		panic(fmt.Sprintf("sparse: Permute on non-square %dx%d matrix", s.Rows, s.Cols))
	}
	if p.Len() != s.Rows {
		panic(fmt.Sprintf("sparse: Permute with %d-vertex permutation on %d-row matrix", p.Len(), s.Rows))
	}
	n := s.Rows
	rowPtr := make([]int, n+1)
	colIdx := make([]int32, s.NNZ())
	var val []T
	if !s.valOnes {
		val = make([]T, s.NNZ())
	}
	var rowScale []T
	if s.RowScale != nil {
		rowScale = make([]T, n)
	}
	k := 0
	for r := 0; r < n; r++ {
		src := int(p.Perm[r])
		for q, e := s.RowPtr[src], s.End(src); q < e; q++ {
			colIdx[k] = p.Inv[s.ColIdx[q]]
			if val != nil {
				val[k] = s.Val[q]
			}
			k++
		}
		rowPtr[r+1] = k
		if rowScale != nil {
			rowScale[r] = s.RowScale[src]
		}
	}
	if val == nil {
		// Gathering a vector of 1s is a vector of 1s: share the pool.
		val = onesSlice[T](k)
	}
	return &CSR[T]{Rows: n, Cols: n, RowPtr: rowPtr, ColIdx: colIdx, Val: val, RowScale: rowScale, valOnes: s.valOnes}
}

// ReorderMinRows gates Reordered: below this many rows the permuted view
// is never built (the gather/scatter overhead outweighs any locality win
// on graphs that already fit in cache). Tests lower it to force the
// reordered path onto small fixtures.
var ReorderMinRows = 1024

// Reordered returns the cached degree-descending permuted view of a
// square s together with its Permutation. It returns (s, nil) — meaning
// "run unpermuted" — when s is too small (ReorderMinRows), not square,
// or already degree-sorted. The view is built once per receiver and
// shared, like the normalisation caches.
func (s *CSR[T]) Reordered() (*CSR[T], *Permutation) {
	if s.Rows != s.Cols || s.Rows < ReorderMinRows {
		return s, nil
	}
	s.reordOnce.Do(func() {
		p := s.DegreePermutation()
		if p.IsIdentity() {
			s.reordM = s
		} else {
			s.reordM = s.Permute(p)
			s.reordP = p
		}
		s.reordReady.Store(true)
	})
	return s.reordM, s.reordP
}
