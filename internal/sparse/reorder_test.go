package sparse

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"trail/internal/mat"
)

// TestDegreePermutationOrder checks the relabelling is degree-descending
// and stable on ties.
func TestDegreePermutationOrder(t *testing.T) {
	// degrees: 1, 3, 0, 3, 2 → order 1, 3 (tie keeps 1 first), 4, 0, 2
	adj := [][]int32{{1}, {0, 3, 4}, {}, {1, 4, 0}, {1, 3}}
	p := FromAdj(adj).DegreePermutation()
	want := []int32{1, 3, 4, 0, 2}
	for i, o := range want {
		if p.Perm[i] != o {
			t.Fatalf("Perm = %v, want %v", p.Perm, want)
		}
		if p.Inv[o] != int32(i) {
			t.Fatalf("Inv[%d] = %d, want %d", o, p.Inv[o], i)
		}
	}
}

// TestPermuteRowsBitIdentical pins the contract the reordered execution
// paths rely on: row r of the permuted SpMM output is bit-identical to
// row Perm[r] of the unpermuted output, for plain, sym-normalised,
// self-loop and mean-normalised (RowScale) operators.
func TestPermuteRowsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	adj := randAdj(rng, 150, 400)
	base := FromAdj(adj)
	x := mat.RandUniform(rng, 150, 7, 1)
	ops := map[string]*Matrix{
		"plain": base,
		"sym":   base.SymNormalized(),
		"loops": base.SymNormalizedWithSelfLoops(),
		"mean":  base.MeanNormalized(),
	}
	for name, s := range ops {
		p := s.DegreePermutation()
		if p.IsIdentity() {
			t.Fatalf("%s: fixture accidentally degree-sorted", name)
		}
		ps := s.Permute(p)
		xp := GatherRowsInto(p, mat.New(x.Rows, x.Cols), x)

		want := s.Mul(x)
		got := ps.Mul(xp)
		for r := 0; r < s.Rows; r++ {
			wrow := want.Row(int(p.Perm[r]))
			grow := got.Row(r)
			for c := range wrow {
				if math.Float64bits(wrow[c]) != math.Float64bits(grow[c]) {
					t.Fatalf("%s: permuted row %d != original row %d at col %d: %v vs %v",
						name, r, p.Perm[r], c, grow[c], wrow[c])
				}
			}
		}
		// Scatter back and require bitwise equality with the original-order
		// product.
		back := ScatterRowsInto(p, mat.New(x.Rows, x.Cols), got)
		for i := range want.Data {
			if math.Float64bits(back.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("%s: scatter-back diverges at flat index %d", name, i)
			}
		}
	}
}

// TestPermuteNormalizeCommute checks that normalising the permuted
// operator equals permuting the normalised operator — the property that
// lets consumers reorder first and normalise per epoch.
func TestPermuteNormalizeCommute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := FromAdj(randAdj(rng, 90, 260))
	p := base.DegreePermutation()

	a := base.Permute(p).MeanNormalized()
	b := base.MeanNormalized().Permute(p)
	x := mat.RandUniform(rng, 90, 5, 1)
	ya, yb := a.Mul(x), b.Mul(x)
	for i := range ya.Data {
		if math.Float64bits(ya.Data[i]) != math.Float64bits(yb.Data[i]) {
			t.Fatalf("mean-normalise and permute do not commute at %d", i)
		}
	}

	a2 := base.Permute(p).SymNormalizedWithSelfLoops()
	b2 := base.SymNormalizedWithSelfLoops().Permute(p)
	ya2, yb2 := a2.Mul(x), b2.Mul(x)
	for i := range ya2.Data {
		if math.Float64bits(ya2.Data[i]) != math.Float64bits(yb2.Data[i]) {
			t.Fatalf("gcn-normalise and permute do not commute at %d", i)
		}
	}
}

// TestReorderedGating checks the size gate and the caching behaviour.
func TestReorderedGating(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small := FromAdj(randAdj(rng, 50, 120))
	if m, p := small.Reordered(); m != small || p != nil {
		t.Fatal("sub-threshold matrix should return itself unpermuted")
	}

	defer func(old int) { ReorderMinRows = old }(ReorderMinRows)
	ReorderMinRows = 10
	s := FromAdj(randAdj(rng, 64, 200))
	m1, p1 := s.Reordered()
	if p1 == nil || m1 == s {
		t.Fatal("above-threshold matrix should be permuted")
	}
	m2, p2 := s.Reordered()
	if m1 != m2 || p1 != p2 {
		t.Fatal("Reordered should cache its result")
	}
	// Hub prefix: permuted degrees must be non-increasing.
	deg := m1.Degrees()
	if !sort.IsSorted(sort.Reverse(sort.IntSlice(deg))) {
		t.Fatalf("reordered degrees not descending: %v", deg)
	}
}

// TestGatherScatterVectors covers the label/mask helpers used by the
// reordered labelprop and GNN inference paths.
func TestGatherScatterVectors(t *testing.T) {
	p := NewPermutation([]int32{2, 0, 1})
	ints := p.GatherInts([]int{10, 11, 12})
	if ints[0] != 12 || ints[1] != 10 || ints[2] != 11 {
		t.Fatalf("GatherInts wrong: %v", ints)
	}
	bools := p.GatherBools([]bool{true, false, true})
	if !bools[0] || bools[1] != true || bools[2] {
		t.Fatalf("GatherBools wrong: %v", bools)
	}
}
