package sparse

import (
	"sync"

	"trail/internal/mat"
)

// sargs is the pooled argument carrier for the parallel CSR kernels,
// mirroring internal/mat's kargs: the block body a par.For call needs is
// a method value bound once at pool construction instead of a per-call
// closure, so steady-state SpMM calls allocate nothing. The body code is
// exactly the closure it replaces; the determinism contract (per-row
// accumulation in CSR entry order within row-partitioned blocks) is
// unchanged.
//
// One pool per concrete element type keeps Get/Put monomorphic; exotic
// named Float types fall back to a fresh carrier per call.
type sargs[T mat.Float] struct {
	s        *CSR[T]
	dst, x   *mat.Dense[T]
	spmmBody func(lo, hi int)
}

func newSargs[T mat.Float]() *sargs[T] {
	j := &sargs[T]{}
	j.spmmBody = j.spmm
	return j
}

var (
	sargsPool64 = sync.Pool{New: func() any { return newSargs[float64]() }}
	sargsPool32 = sync.Pool{New: func() any { return newSargs[float32]() }}
)

func sargsPoolFor[T mat.Float]() *sync.Pool {
	switch any(T(0)).(type) {
	case float64:
		return &sargsPool64
	case float32:
		return &sargsPool32
	}
	return nil
}

func getSargs[T mat.Float](s *CSR[T], dst, x *mat.Dense[T]) *sargs[T] {
	var j *sargs[T]
	if p := sargsPoolFor[T](); p != nil {
		j = p.Get().(*sargs[T])
	} else {
		j = newSargs[T]()
	}
	j.s, j.dst, j.x = s, dst, x
	return j
}

func (j *sargs[T]) put() {
	j.s, j.dst, j.x = nil, nil, nil
	if p := sargsPoolFor[T](); p != nil {
		p.Put(j)
	}
}

// spmm is the SpMMInto block body: per output row, accumulate CSR
// entries in order, then apply RowScale. The carrier fields are hoisted
// into locals so the hot loops keep them in registers (see mat's kargs).
func (j *sargs[T]) spmm(lo, hi int) {
	s, x, dst := j.s, j.x, j.dst
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for c := range drow {
			drow[c] = 0
		}
		for k, e := s.RowPtr[i], s.End(i); k < e; k++ {
			mat.Axpy(s.Val[k], x.Row(int(s.ColIdx[k])), drow)
		}
		if s.RowScale != nil {
			if sc := s.RowScale[i]; sc != 1 {
				for c := range drow {
					drow[c] *= sc
				}
			}
		}
	}
}
