package sparse

import (
	"sync"

	"trail/internal/mat"
)

// sargs is the pooled argument carrier for the parallel CSR kernels,
// mirroring internal/mat's kargs: the block body a par.For call needs is
// a method value bound once at pool construction instead of a per-call
// closure, so steady-state SpMM calls allocate nothing. The body code is
// exactly the closure it replaces; the determinism contract (per-row
// accumulation in CSR entry order within row-partitioned blocks) is
// unchanged.
type sargs struct {
	s        *Matrix
	dst, x   *mat.Matrix
	spmmBody func(lo, hi int)
}

var sargsPool = sync.Pool{New: func() any {
	j := &sargs{}
	j.spmmBody = j.spmm
	return j
}}

func getSargs(s *Matrix, dst, x *mat.Matrix) *sargs {
	j := sargsPool.Get().(*sargs)
	j.s, j.dst, j.x = s, dst, x
	return j
}

func (j *sargs) put() {
	j.s, j.dst, j.x = nil, nil, nil
	sargsPool.Put(j)
}

// spmm is the SpMMInto block body: per output row, accumulate CSR
// entries in order, then apply RowScale. The carrier fields are hoisted
// into locals so the hot loops keep them in registers (see mat's kargs).
func (j *sargs) spmm(lo, hi int) {
	s, x, dst := j.s, j.x, j.dst
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for c := range drow {
			drow[c] = 0
		}
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			mat.Axpy(s.Val[k], x.Row(int(s.ColIdx[k])), drow)
		}
		if s.RowScale != nil {
			if sc := s.RowScale[i]; sc != 1 {
				for c := range drow {
					drow[c] *= sc
				}
			}
		}
	}
}
