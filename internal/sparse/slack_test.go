package sparse

import (
	"math"
	"math/rand"
	"testing"

	"trail/internal/mat"
)

// slackedFixture builds a random packed CSR and a slack-slotted view of
// the same logical matrix: every row is copied into a buffer with random
// slack between rows, and the slack slots are poisoned so any kernel
// that reads them fails loudly.
func slackedFixture(t *testing.T, rng *rand.Rand, n int) (*Matrix, *Matrix) {
	t.Helper()
	rowPtr := make([]int, n+1)
	var colIdx []int32
	for i := 0; i < n; i++ {
		deg := rng.Intn(5)
		for d := 0; d < deg; d++ {
			c := rng.Intn(n)
			if c == i { // keep the diagonal free for SymNormalizedWithSelfLoops
				c = (c + 1) % n
			}
			colIdx = append(colIdx, int32(c))
		}
		rowPtr[i+1] = len(colIdx)
	}
	packed := New(n, n, rowPtr, colIdx, nil)

	start := make([]int, n+1)
	end := make([]int, n)
	var buf []int32
	var val []float64
	for i := 0; i < n; i++ {
		start[i] = len(buf)
		row := colIdx[rowPtr[i]:rowPtr[i+1]]
		buf = append(buf, row...)
		for range row {
			val = append(val, 1)
		}
		end[i] = len(buf)
		for s := rng.Intn(4); s > 0; s-- { // poisoned slack
			buf = append(buf, int32(-1))
			val = append(val, math.NaN())
		}
	}
	start[n] = len(buf)
	return packed, NewSlackedOf(n, n, start, end, buf, val, packed.NNZ())
}

func bitsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestSlackedKernelsMatchPacked pins the slack contract: every kernel and
// constructor walks RowPtr[i]..End(i) only, so a slacked view computes
// bit-identical results to its packed equivalent even with poisoned
// slack slots.
func TestSlackedKernelsMatchPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(40)
		p, s := slackedFixture(t, rng, n)
		if p.NNZ() != s.NNZ() {
			t.Fatalf("trial %d: nnz %d vs %d", trial, p.NNZ(), s.NNZ())
		}

		x := mat.New(n, 3)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		dp, ds := mat.New(n, 3), mat.New(n, 3)
		p.SpMMInto(dp, x)
		s.SpMMInto(ds, x)
		if !bitsEq(dp.Data, ds.Data) {
			t.Fatalf("trial %d: SpMM diverges between packed and slacked", trial)
		}

		ps, ss := p.SymNormalized(), s.SymNormalized()
		p.SymNormalized().SpMMInto(dp, x)
		s.SymNormalized().SpMMInto(ds, x)
		if !bitsEq(dp.Data, ds.Data) {
			t.Fatalf("trial %d: SymNormalized SpMM diverges", trial)
		}
		for i := 0; i < n; i++ {
			pr := ps.Val[ps.RowPtr[i]:ps.End(i)]
			sr := ss.Val[ss.RowPtr[i]:ss.End(i)]
			if !bitsEq(pr, sr) {
				t.Fatalf("trial %d: sym row %d differs", trial, i)
			}
		}

		pm, sm := p.MeanNormalized(), s.MeanNormalized()
		if !bitsEq(pm.RowScale, sm.RowScale) {
			t.Fatalf("trial %d: mean RowScale differs", trial)
		}

		pl, sl := p.SymNormalizedWithSelfLoops(), s.SymNormalizedWithSelfLoops()
		if !bitsEq(pl.Val, sl.Val) {
			t.Fatalf("trial %d: self-loop operator differs", trial)
		}

		pt, st := p.Transpose(), s.Transpose()
		if !bitsEq(pt.Val, st.Val) || pt.NNZ() != st.NNZ() {
			t.Fatalf("trial %d: transpose differs", trial)
		}
		for i := range pt.ColIdx {
			if pt.ColIdx[i] != st.ColIdx[i] {
				t.Fatalf("trial %d: transpose structure differs at %d", trial, i)
			}
		}

		perm := p.DegreePermutation()
		sperm := s.DegreePermutation()
		for i := range perm.Perm {
			if perm.Perm[i] != sperm.Perm[i] {
				t.Fatalf("trial %d: degree permutation differs at %d", trial, i)
			}
		}
		pp, sp := p.Permute(perm), s.Permute(sperm)
		if pp.NNZ() != sp.NNZ() || !bitsEq(pp.Val, sp.Val) {
			t.Fatalf("trial %d: permuted view differs", trial)
		}
		for i := range pp.ColIdx {
			if pp.ColIdx[i] != sp.ColIdx[i] {
				t.Fatalf("trial %d: permuted structure differs at %d", trial, i)
			}
		}
	}
}

// TestInstallersSeedCaches verifies Install* wires a prebuilt result into
// the lazy accessor and refuses double population.
func TestInstallersSeedCaches(t *testing.T) {
	build := func() *Matrix {
		return New(3, 3, []int{0, 2, 3, 4}, []int32{1, 2, 0, 0}, nil)
	}
	a, b := build(), build()
	sym, mean := b.SymNormalized(), b.MeanNormalized()
	a.InstallSymNormalized(sym)
	a.InstallMeanNormalized(mean)
	if a.SymNormalized() != sym || a.MeanNormalized() != mean {
		t.Fatal("installed caches not returned by the lazy accessors")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double InstallSymNormalized did not panic")
		}
	}()
	a.InstallSymNormalized(sym)
}

// TestCastCarriesReorderCache pins the Cast extension: when the receiver's
// degree-descending view is built, the cast result returns a cast of the
// same view (same permutation, element-wise cast values) without
// re-sorting — and it is bit-identical to re-deriving the reordering on
// the cast matrix, because Cast and Permute commute element-wise.
func TestCastCarriesReorderCache(t *testing.T) {
	defer func(n int) { ReorderMinRows = n }(ReorderMinRows)
	ReorderMinRows = 4

	rng := rand.New(rand.NewSource(11))
	n := 64
	rowPtr := make([]int, n+1)
	var colIdx []int32
	for i := 0; i < n; i++ {
		deg := rng.Intn(6)
		if i < 4 {
			deg += 10 // hubs, so the permutation is not the identity
		}
		for d := 0; d < deg; d++ {
			colIdx = append(colIdx, int32(rng.Intn(n)))
		}
		rowPtr[i+1] = len(colIdx)
	}
	m := New(n, n, rowPtr, colIdx, nil)
	rm, rp := m.Reordered()
	if rp == nil {
		t.Fatal("fixture should not be degree-sorted already")
	}

	c := Cast[float32](m)
	crm, crp := c.Reordered()
	if crp != rp {
		t.Fatal("cast did not share the structure-only permutation")
	}
	fresh := Cast[float32](New(n, n, rowPtr, colIdx, nil))
	frm, frp := fresh.Reordered()
	if frp == nil || len(frp.Perm) != len(crp.Perm) {
		t.Fatal("fresh reorder missing")
	}
	for i := range frp.Perm {
		if frp.Perm[i] != crp.Perm[i] {
			t.Fatalf("carried permutation differs from re-derived at %d", i)
		}
	}
	if crm.NNZ() != frm.NNZ() || crm.NNZ() != rm.NNZ() {
		t.Fatal("carried view nnz mismatch")
	}
	for i := range frm.ColIdx {
		if frm.ColIdx[i] != crm.ColIdx[i] {
			t.Fatalf("carried permuted structure differs at %d", i)
		}
	}
	for i := range frm.Val {
		if math.Float32bits(frm.Val[i]) != math.Float32bits(crm.Val[i]) {
			t.Fatalf("carried permuted values differ at %d", i)
		}
	}

	// Below the gate nothing is carried and Reordered degrades to (s, nil).
	ReorderMinRows = 1024
	small := Cast[float32](m)
	if sm, sp := small.Reordered(); sm != small || sp != nil {
		t.Fatal("small cast matrix should run unpermuted")
	}
}
