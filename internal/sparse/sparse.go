// Package sparse implements the shared sparse message-passing engine:
// a CSR (compressed sparse row) matrix with the multiply kernels and
// normalisation constructors that label propagation (Eq. 1), the GCN
// baseline (Eq. 2) and GraphSAGE (Eq. 3) all dispatch through. Before
// this engine existed, each of those models hand-rolled its own
// aggregation loop over adjacency lists; now they build one CSR snapshot
// of the TKG and differ only in how the edge values are normalised.
//
// # Determinism contract
//
// Entry order within a CSR row is preserved from the source adjacency
// and never re-sorted, and SpMM accumulates each output row serially in
// that order inside one par.For block. Together with par's fixed
// partitioning this makes every kernel bit-identical between serial and
// parallel runs, and bit-identical to the adjacency-list loops the
// normalisation constructors replace (verified by equivalence tests in
// labelprop and gnn). No atomics or locks ever touch float accumulation.
//
// A Matrix is immutable once constructed: constructors that re-weight
// (SymNormalized, MeanNormalized, ...) share the structure arrays of
// their receiver and allocate fresh value arrays.
package sparse

import (
	"fmt"
	"math"
	"sync"

	"trail/internal/mat"
	"trail/internal/par"
)

// Matrix is a CSR sparse matrix. Row i's entries are
// ColIdx[RowPtr[i]:RowPtr[i+1]] with values Val[RowPtr[i]:RowPtr[i+1]].
// If RowScale is non-nil, the logical entry value is Val[k]*RowScale[i]:
// kernels accumulate the raw Val products first and multiply the
// finished row by RowScale[i], which is exactly the sum-then-scale
// arithmetic of a mean aggregator (and bit-identical to it).
type Matrix struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int32
	Val        []float64
	RowScale   []float64

	tOnce sync.Once
	t     *Matrix // cached transpose, built on first SpMMTrans/MulTrans

	// Normalisation caches: matrices are immutable once constructed and
	// the normalised variants are pure functions of the receiver, so the
	// repeated-evaluation loops (label-propagation folds, per-epoch GNN
	// operators) can share one result instead of re-deriving value
	// arrays on every call.
	symOnce, loopOnce, meanOnce sync.Once
	symN, loopN, meanN          *Matrix
}

// New wraps raw CSR arrays without copying; the caller must not mutate
// them afterwards. A nil val means all entries are 1 (an unweighted
// adjacency) and is materialised as ones.
func New(rows, cols int, rowPtr []int, colIdx []int32, val []float64) *Matrix {
	if len(rowPtr) != rows+1 {
		panic(fmt.Sprintf("sparse: RowPtr length %d != rows+1 (%d)", len(rowPtr), rows+1))
	}
	nnz := rowPtr[rows]
	if len(colIdx) != nnz {
		panic(fmt.Sprintf("sparse: ColIdx length %d != nnz %d", len(colIdx), nnz))
	}
	if val == nil {
		val = make([]float64, nnz)
		for i := range val {
			val[i] = 1
		}
	} else if len(val) != nnz {
		panic(fmt.Sprintf("sparse: Val length %d != nnz %d", len(val), nnz))
	}
	return &Matrix{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// FromAdj builds an unweighted square CSR from adjacency lists, one row
// per node, preserving each list's neighbour order. It accepts any
// int32-backed node ID type (graph.NodeID in this repository).
func FromAdj[T ~int32](adj [][]T) *Matrix {
	n := len(adj)
	rowPtr := make([]int, n+1)
	for i, ns := range adj {
		rowPtr[i+1] = rowPtr[i] + len(ns)
	}
	colIdx := make([]int32, rowPtr[n])
	k := 0
	for _, ns := range adj {
		for _, v := range ns {
			colIdx[k] = int32(v)
			k++
		}
	}
	return New(n, n, rowPtr, colIdx, nil)
}

// NNZ returns the number of stored entries.
func (s *Matrix) NNZ() int { return s.RowPtr[s.Rows] }

// Degrees returns the number of stored entries per row (the node degree
// for an adjacency CSR).
func (s *Matrix) Degrees() []int {
	out := make([]int, s.Rows)
	for i := range out {
		out[i] = s.RowPtr[i+1] - s.RowPtr[i]
	}
	return out
}

// RowSums returns the per-row sums of the logical entry values
// (Val*RowScale). For an unweighted adjacency this is the degree.
func (s *Matrix) RowSums() []float64 {
	out := make([]float64, s.Rows)
	for i := 0; i < s.Rows; i++ {
		sum := 0.0
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			sum += s.Val[k]
		}
		if s.RowScale != nil {
			sum *= s.RowScale[i]
		}
		out[i] = sum
	}
	return out
}

// WithValues returns a matrix sharing s's structure with the given raw
// entry values and optional row scales (either may be nil: nil val keeps
// s's values, nil rowScale means none). Used by callers that re-weight a
// fixed edge structure — e.g. the GNN explainer's learned edge mask.
func (s *Matrix) WithValues(val, rowScale []float64) *Matrix {
	if val == nil {
		val = s.Val
	} else if len(val) != s.NNZ() {
		panic(fmt.Sprintf("sparse: WithValues length %d != nnz %d", len(val), s.NNZ()))
	}
	if rowScale != nil && len(rowScale) != s.Rows {
		panic(fmt.Sprintf("sparse: WithValues rowScale length %d != rows %d", len(rowScale), s.Rows))
	}
	return &Matrix{Rows: s.Rows, Cols: s.Cols, RowPtr: s.RowPtr, ColIdx: s.ColIdx, Val: val, RowScale: rowScale}
}

// SymNormalized returns D^{-1/2} S D^{-1/2}: entry (i,j) becomes
// Val * (1/sqrt(rowsum_i) * 1/sqrt(rowsum_j)), the label-propagation
// operator of Eq. 1 (Zhou et al. 2003). Rows with zero sum keep zero
// weight. The receiver must be square and must not use RowScale. The
// result is computed once per receiver and shared by later calls (it is
// immutable, like every constructed Matrix).
func (s *Matrix) SymNormalized() *Matrix {
	s.mustSquarePlain("SymNormalized")
	s.symOnce.Do(func() {
		invSqrt := s.invSqrtRowSums(0)
		val := make([]float64, s.NNZ())
		for i := 0; i < s.Rows; i++ {
			for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
				val[k] = s.Val[k] * (invSqrt[i] * invSqrt[int(s.ColIdx[k])])
			}
		}
		s.symN = &Matrix{Rows: s.Rows, Cols: s.Cols, RowPtr: s.RowPtr, ColIdx: s.ColIdx, Val: val}
	})
	return s.symN
}

// SymNormalizedWithSelfLoops returns the GCN operator of Eq. 2,
// D̃^{-1/2} (S+I) D̃^{-1/2} with D̃ = rowsum+1: a new CSR whose rows hold
// the self-loop entry first (weight 1/(rowsum_i+1) on the diagonal via
// the product form) followed by the original entries in source order —
// the same accumulation order as the loop nest it replaced. The receiver
// must be square, must not use RowScale, and must not already contain
// diagonal entries.
func (s *Matrix) SymNormalizedWithSelfLoops() *Matrix {
	s.mustSquarePlain("SymNormalizedWithSelfLoops")
	s.loopOnce.Do(func() {
		invSqrt := s.invSqrtRowSums(1)
		n := s.Rows
		rowPtr := make([]int, n+1)
		colIdx := make([]int32, s.NNZ()+n)
		val := make([]float64, s.NNZ()+n)
		k := 0
		for i := 0; i < n; i++ {
			rowPtr[i] = k
			colIdx[k] = int32(i)
			val[k] = invSqrt[i] * invSqrt[i]
			k++
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				j := s.ColIdx[p]
				if int(j) == i {
					panic("sparse: SymNormalizedWithSelfLoops on matrix with existing diagonal entries")
				}
				colIdx[k] = j
				val[k] = s.Val[p] * (invSqrt[i] * invSqrt[j])
				k++
			}
		}
		rowPtr[n] = k
		s.loopN = &Matrix{Rows: n, Cols: n, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	})
	if s.loopN == nil {
		panic("sparse: SymNormalizedWithSelfLoops on matrix with existing diagonal entries")
	}
	return s.loopN
}

// MeanNormalized returns the mean aggregator of Eq. 3: row i averages
// the rows its entries point at. It shares the receiver's structure and
// values and sets RowScale = 1/rowsum (0 for empty rows), so SpMM sums
// first and scales once per row — bit-identical to the sum-then-divide
// aggregation loop it replaced. The receiver must not use RowScale.
func (s *Matrix) MeanNormalized() *Matrix {
	if s.RowScale != nil {
		panic("sparse: MeanNormalized on already row-scaled matrix")
	}
	s.meanOnce.Do(func() {
		scale := make([]float64, s.Rows)
		for i := 0; i < s.Rows; i++ {
			sum := 0.0
			for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
				sum += s.Val[k]
			}
			if sum > 0 {
				scale[i] = 1 / sum
			}
		}
		s.meanN = &Matrix{Rows: s.Rows, Cols: s.Cols, RowPtr: s.RowPtr, ColIdx: s.ColIdx, Val: s.Val, RowScale: scale}
	})
	return s.meanN
}

// invSqrtRowSums returns 1/sqrt(rowsum+shift) per row (0 for rows whose
// shifted sum is 0).
func (s *Matrix) invSqrtRowSums(shift float64) []float64 {
	out := make([]float64, s.Rows)
	for i := 0; i < s.Rows; i++ {
		sum := shift
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			sum += s.Val[k]
		}
		if sum > 0 {
			out[i] = 1 / math.Sqrt(sum)
		}
	}
	return out
}

func (s *Matrix) mustSquarePlain(op string) {
	if s.Rows != s.Cols {
		panic(fmt.Sprintf("sparse: %s on non-square %dx%d matrix", op, s.Rows, s.Cols))
	}
	if s.RowScale != nil {
		panic(fmt.Sprintf("sparse: %s on row-scaled matrix", op))
	}
}

// Transpose returns sᵀ with RowScale folded into the entry values.
// Within each transposed row, entries appear in ascending source-row
// order — the order a row-major scatter loop would have visited them, so
// transpose-SpMM reproduces the hand-rolled backward scatters bit for
// bit. The result is cached by SpMMTrans/MulTrans; calling Transpose
// directly always builds a fresh matrix.
func (s *Matrix) Transpose() *Matrix {
	nnz := s.NNZ()
	rowPtr := make([]int, s.Cols+1)
	for _, j := range s.ColIdx {
		rowPtr[j+1]++
	}
	for i := 0; i < s.Cols; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int32, nnz)
	val := make([]float64, nnz)
	cursor := make([]int, s.Cols)
	copy(cursor, rowPtr[:s.Cols])
	for i := 0; i < s.Rows; i++ {
		scale := 1.0
		if s.RowScale != nil {
			scale = s.RowScale[i]
		}
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			j := s.ColIdx[k]
			c := cursor[j]
			colIdx[c] = int32(i)
			if s.RowScale != nil {
				val[c] = s.Val[k] * scale
			} else {
				val[c] = s.Val[k]
			}
			cursor[j] = c + 1
		}
	}
	return &Matrix{Rows: s.Cols, Cols: s.Rows, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// transposed returns the cached transpose, building it on first use.
// Safe for concurrent callers.
func (s *Matrix) transposed() *Matrix {
	s.tOnce.Do(func() { s.t = s.Transpose() })
	return s.t
}

// spmm kernel thresholds, matching the dense kernels in mat: below
// minParFlops total work the kernel runs serially (goroutine handoff
// costs more than it saves on eval-sized matrices); above it, blocks of
// roughly grainFlops are handed to the par pool.
const (
	minParFlops = 1 << 16
	grainFlops  = 1 << 14
)

// SpMM computes dst = s·x, overwriting dst; it is SpMMInto under the
// historical name.
func (s *Matrix) SpMM(dst, x *mat.Matrix) { s.SpMMInto(dst, x) }

// SpMMInto computes dst = s·x, overwriting dst. dst must be s.Rows ×
// x.Cols with x s.Cols rows, and must not alias x. Each output row
// accumulates its entries in CSR order, then applies RowScale, so
// results are bit-identical at any parallelism level.
func (s *Matrix) SpMMInto(dst, x *mat.Matrix) {
	if s.Cols != x.Rows || dst.Rows != s.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: SpMM %dx%d = %dx%d * %dx%d",
			dst.Rows, dst.Cols, s.Rows, s.Cols, x.Rows, x.Cols))
	}
	if dst == x || (len(dst.Data) > 0 && len(x.Data) > 0 && &dst.Data[0] == &x.Data[0]) {
		panic("sparse: SpMM dst must not alias x")
	}
	// The block body lives on a pooled carrier (see sargs) so repeated
	// calls allocate nothing.
	j := getSargs(s, dst, x)
	work := (s.NNZ() + s.Rows) * x.Cols
	if work < minParFlops {
		j.spmm(0, s.Rows)
	} else {
		perRow := work/s.Rows + 1
		grain := grainFlops / perRow
		if grain < 1 {
			grain = 1
		}
		par.For(s.Rows, grain, j.spmmBody)
	}
	j.put()
}

// SpMMTrans computes dst = sᵀ·x, overwriting dst, via a transpose CSR
// that is built once per matrix and cached. dst must be s.Cols × x.Cols
// with x s.Rows rows.
func (s *Matrix) SpMMTrans(dst, x *mat.Matrix) {
	s.transposed().SpMMInto(dst, x)
}

// SpMMTransInto is SpMMTrans under the Into-kernel naming convention.
func (s *Matrix) SpMMTransInto(dst, x *mat.Matrix) { s.SpMMTrans(dst, x) }

// Mul returns s·x as a fresh matrix.
func (s *Matrix) Mul(x *mat.Matrix) *mat.Matrix {
	dst := mat.New(s.Rows, x.Cols)
	s.SpMM(dst, x)
	return dst
}

// MulTrans returns sᵀ·x as a fresh matrix.
func (s *Matrix) MulTrans(x *mat.Matrix) *mat.Matrix {
	dst := mat.New(s.Cols, x.Cols)
	s.SpMMTrans(dst, x)
	return dst
}
