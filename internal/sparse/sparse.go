// Package sparse implements the shared sparse message-passing engine:
// a CSR (compressed sparse row) matrix with the multiply kernels and
// normalisation constructors that label propagation (Eq. 1), the GCN
// baseline (Eq. 2) and GraphSAGE (Eq. 3) all dispatch through. Before
// this engine existed, each of those models hand-rolled its own
// aggregation loop over adjacency lists; now they build one CSR snapshot
// of the TKG and differ only in how the edge values are normalised.
//
// The element type of the value arrays is a parameter (CSR[T] with
// T = float32 | float64); Matrix is the float64 reference alias. As in
// internal/mat, the float64 instantiation is bit-identical to the
// pre-generic code, scalar row-sum reductions accumulate in float64 at
// every precision, and the per-row vector accumulation of SpMM stays in
// storage precision (it is the bandwidth the float32 path halves).
//
// # Determinism contract
//
// Entry order within a CSR row is preserved from the source adjacency
// and never re-sorted, and SpMM accumulates each output row serially in
// that order inside one par.For block. Together with par's fixed
// partitioning this makes every kernel bit-identical between serial and
// parallel runs, and bit-identical to the adjacency-list loops the
// normalisation constructors replace (verified by equivalence tests in
// labelprop and gnn). No atomics or locks ever touch float accumulation.
//
// # Cache-aware reordering
//
// Reordered returns a degree-descending permuted view of a square CSR
// together with the Permutation that maps between orderings. Because a
// permutation that preserves per-row entry order relocates rows without
// touching any accumulation chain, row r of the permuted product equals
// row Perm[r] of the original product bit for bit — so consumers
// (labelprop, GNN inference) can run entirely in permuted space for
// locality and scatter the results back into original vertex order with
// zero arithmetic difference. See DESIGN.md §3f.
//
// A Matrix is immutable once constructed: constructors that re-weight
// (SymNormalized, MeanNormalized, ...) share the structure arrays of
// their receiver and allocate fresh value arrays.
package sparse

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"trail/internal/mat"
	"trail/internal/par"
)

// CSR is a sparse matrix in compressed sparse row form. Row i's entries
// are ColIdx[RowPtr[i]:End(i)] with values Val[RowPtr[i]:End(i)].
// If RowScale is non-nil, the logical entry value is Val[k]*RowScale[i]:
// kernels accumulate the raw Val products first and multiply the
// finished row by RowScale[i], which is exactly the sum-then-scale
// arithmetic of a mean aggregator (and bit-identical to it).
//
// A packed matrix (RowEnd == nil) stores rows contiguously:
// End(i) == RowPtr[i+1]. A slack-slotted matrix (RowEnd != nil) leaves
// unused capacity between End(i) and the next row's start so that an
// incremental maintainer (graph's delta-append builder) can splice
// entries in without re-packing; every row loop in this package walks
// RowPtr[i]..End(i) and never reads the slack slots, so kernels are
// bit-identical between a slacked view and its packed equivalent.
type CSR[T mat.Float] struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int32
	Val        []T
	RowScale   []T
	// RowEnd, when non-nil, is the exclusive end offset of each row's
	// live entries (slack-slotted storage, see type comment). Slacked
	// matrices are transient views owned by their builder; everything
	// this package constructs from one (normalised variants, transposes,
	// permuted views) is packed.
	RowEnd []int
	// nnz caches the live entry count for slacked matrices, where
	// RowPtr[Rows] covers the slots rather than the entries.
	nnz int
	// valOnes records that Val is all ones by construction (a nil val
	// argument — an unweighted adjacency). Cast and Permute use it to
	// serve the result's values from the shared ones pool instead of
	// copying; see ones.go.
	valOnes bool

	tOnce sync.Once
	t     *CSR[T] // cached transpose, built on first SpMMTrans/MulTrans

	// Normalisation caches: matrices are immutable once constructed and
	// the normalised variants are pure functions of the receiver, so the
	// repeated-evaluation loops (label-propagation folds, per-epoch GNN
	// operators) can share one result instead of re-deriving value
	// arrays on every call. Install* seeds a cache with a prebuilt,
	// provably-identical result (the incremental CSR maintainer does
	// this so snapshot publication skips the re-derivation entirely).
	symOnce, loopOnce, meanOnce sync.Once
	symN, loopN, meanN          *CSR[T]
	// meanReady lets Cast carry the mean cache (all-ones float64
	// receivers only — see Cast) without firing the Once.
	meanReady atomic.Bool

	// Reordering cache: the degree-descending permuted view and its
	// permutation, built on first Reordered call (or installed).
	// reordReady lets Cast carry the cache without firing the Once.
	reordOnce  sync.Once
	reordReady atomic.Bool
	reordM     *CSR[T]
	reordP     *Permutation
}

// Matrix is the float64 reference instantiation of CSR.
type Matrix = CSR[float64]

// New wraps raw float64 CSR arrays without copying; the caller must not
// mutate them afterwards. A nil val means all entries are 1 (an
// unweighted adjacency) and is materialised as ones.
func New(rows, cols int, rowPtr []int, colIdx []int32, val []float64) *Matrix {
	return NewOf[float64](rows, cols, rowPtr, colIdx, val)
}

// NewOf is New at any element type.
func NewOf[T mat.Float](rows, cols int, rowPtr []int, colIdx []int32, val []T) *CSR[T] {
	if len(rowPtr) != rows+1 {
		panic(fmt.Sprintf("sparse: RowPtr length %d != rows+1 (%d)", len(rowPtr), rows+1))
	}
	nnz := rowPtr[rows]
	if len(colIdx) != nnz {
		panic(fmt.Sprintf("sparse: ColIdx length %d != nnz %d", len(colIdx), nnz))
	}
	ones := val == nil
	if ones {
		val = onesSlice[T](nnz)
	} else if len(val) != nnz {
		panic(fmt.Sprintf("sparse: Val length %d != nnz %d", len(val), nnz))
	}
	return &CSR[T]{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val, valOnes: ones}
}

// FromAdj builds an unweighted square CSR from adjacency lists, one row
// per node, preserving each list's neighbour order. It accepts any
// int32-backed node ID type (graph.NodeID in this repository).
func FromAdj[T ~int32](adj [][]T) *Matrix {
	n := len(adj)
	rowPtr := make([]int, n+1)
	for i, ns := range adj {
		rowPtr[i+1] = rowPtr[i] + len(ns)
	}
	colIdx := make([]int32, rowPtr[n])
	k := 0
	for _, ns := range adj {
		for _, v := range ns {
			colIdx[k] = int32(v)
			k++
		}
	}
	return New(n, n, rowPtr, colIdx, nil)
}

// NewSlackedOf wraps slack-slotted CSR arrays without copying: row i's
// live entries are colIdx[rowPtr[i]:rowEnd[i]], the slots beyond rowEnd[i]
// are uninitialised slack, and nnz is the total live entry count. The
// view shares its arrays with the caller (typically an incremental
// builder) and is only valid until the builder's next mutation; every
// kernel and constructor in this package walks live entries only, so
// results are bit-identical to the packed equivalent.
func NewSlackedOf[T mat.Float](rows, cols int, rowPtr, rowEnd []int, colIdx []int32, val []T, nnz int) *CSR[T] {
	if len(rowPtr) != rows+1 {
		panic(fmt.Sprintf("sparse: RowPtr length %d != rows+1 (%d)", len(rowPtr), rows+1))
	}
	if len(rowEnd) != rows {
		panic(fmt.Sprintf("sparse: RowEnd length %d != rows (%d)", len(rowEnd), rows))
	}
	if len(val) != len(colIdx) {
		panic(fmt.Sprintf("sparse: Val length %d != ColIdx length %d", len(val), len(colIdx)))
	}
	return &CSR[T]{Rows: rows, Cols: cols, RowPtr: rowPtr, RowEnd: rowEnd, ColIdx: colIdx, Val: val, nnz: nnz}
}

// End returns the exclusive end offset of row i's live entries:
// RowPtr[i+1] for packed matrices, RowEnd[i] for slack-slotted ones.
// Row loops pair it with RowPtr[i].
func (s *CSR[T]) End(i int) int {
	if s.RowEnd != nil {
		return s.RowEnd[i]
	}
	return s.RowPtr[i+1]
}

// Slacked reports whether the matrix uses slack-slotted row storage
// (a transient builder view) rather than packed contiguous rows.
func (s *CSR[T]) Slacked() bool { return s.RowEnd != nil }

// InstallSymNormalized seeds the SymNormalized cache with a prebuilt
// result. The caller guarantees m is bit-identical to what a lazy
// SymNormalized call would construct (the incremental CSR builder's
// contract, pinned by graph's patch fuzz harness). It panics if the
// cache was already populated — install immediately after construction.
func (s *CSR[T]) InstallSymNormalized(m *CSR[T]) {
	installed := false
	s.symOnce.Do(func() { s.symN = m; installed = true })
	if !installed {
		panic("sparse: InstallSymNormalized after the cache was built")
	}
}

// InstallMeanNormalized seeds the MeanNormalized cache; same contract as
// InstallSymNormalized.
func (s *CSR[T]) InstallMeanNormalized(m *CSR[T]) {
	installed := false
	s.meanOnce.Do(func() { s.meanN = m; s.meanReady.Store(true); installed = true })
	if !installed {
		panic("sparse: InstallMeanNormalized after the cache was built")
	}
}

// InstallReordered seeds the Reordered cache with a prebuilt permuted
// view and its permutation (p == nil with m == s means "already
// degree-sorted, run unpermuted" — the same encoding the lazy path
// caches). Same contract as InstallSymNormalized.
func (s *CSR[T]) InstallReordered(m *CSR[T], p *Permutation) {
	installed := false
	s.reordOnce.Do(func() {
		s.reordM, s.reordP = m, p
		s.reordReady.Store(true)
		installed = true
	})
	if !installed {
		panic("sparse: InstallReordered after the cache was built")
	}
}

// Cast returns s converted to element type T. When s is already a
// *CSR[T] it is returned unchanged; otherwise the structure arrays
// (RowPtr, RowEnd, ColIdx) are shared and fresh value arrays are rounded
// element-wise. The reordering cache, when built, is carried over (the
// permutation is structure-only, and Cast and Permute commute
// element-wise, so the carried view is bit-identical to re-deriving it);
// the normalisation caches are not — their values do not commute with
// rounding in general — so convert before normalising, or re-normalise
// after.
func Cast[T, U mat.Float](s *CSR[U]) *CSR[T] {
	if m, ok := any(s).(*CSR[T]); ok {
		return m
	}
	var val []T
	if s.valOnes {
		// Converting a vector of 1s is a vector of 1s at any element
		// type — serve it from the shared pool instead of copying.
		val = onesSlice[T](len(s.Val))
	} else {
		val = make([]T, len(s.Val))
		for i, v := range s.Val {
			val[i] = T(v)
		}
	}
	var scale []T
	if s.RowScale != nil {
		scale = make([]T, len(s.RowScale))
		for i, v := range s.RowScale {
			scale[i] = T(v)
		}
	}
	out := &CSR[T]{Rows: s.Rows, Cols: s.Cols, RowPtr: s.RowPtr, RowEnd: s.RowEnd, ColIdx: s.ColIdx, Val: val, RowScale: scale, nnz: s.nnz, valOnes: s.valOnes}
	if s.reordReady.Load() && out.Rows == out.Cols && out.Rows >= ReorderMinRows {
		if s.reordM == s {
			// Already degree-sorted: the cached encoding is (self, nil).
			out.InstallReordered(out, nil)
		} else {
			out.InstallReordered(Cast[T](s.reordM), s.reordP)
		}
	}
	if _, src64 := any(U(0)).(float64); src64 && s.valOnes && s.meanReady.Load() {
		// Mean carry, narrowing from float64 only: an all-ones row sums
		// to the exact integer d in both precisions, the float64 scale is
		// 1/float64(d), and the lazy T kernel computes T(1/sum) with a
		// float64 sum — i.e. T(1/float64(d)), exactly the converted
		// float64 scale. Widening would double-round (T(1/float64(d))
		// re-divided at higher precision differs), so it stays lazy.
		ms := make([]T, len(s.meanN.RowScale))
		for i, v := range s.meanN.RowScale {
			ms[i] = T(v)
		}
		out.InstallMeanNormalized(out.WithValues(nil, ms))
	}
	return out
}

// NNZ returns the number of live entries.
func (s *CSR[T]) NNZ() int {
	if s.RowEnd != nil {
		return s.nnz
	}
	return s.RowPtr[s.Rows]
}

// Degrees returns the number of stored entries per row (the node degree
// for an adjacency CSR).
func (s *CSR[T]) Degrees() []int {
	out := make([]int, s.Rows)
	for i := range out {
		out[i] = s.End(i) - s.RowPtr[i]
	}
	return out
}

// RowSums returns the per-row sums of the logical entry values
// (Val*RowScale), accumulated in float64. For an unweighted adjacency
// this is the degree.
func (s *CSR[T]) RowSums() []float64 {
	out := make([]float64, s.Rows)
	for i := 0; i < s.Rows; i++ {
		sum := 0.0
		for k, e := s.RowPtr[i], s.End(i); k < e; k++ {
			sum += float64(s.Val[k])
		}
		if s.RowScale != nil {
			sum *= float64(s.RowScale[i])
		}
		out[i] = sum
	}
	return out
}

// WithValues returns a matrix sharing s's structure with the given raw
// entry values and optional row scales (either may be nil: nil val keeps
// s's values, nil rowScale means none). Used by callers that re-weight a
// fixed edge structure — e.g. the GNN explainer's learned edge mask.
func (s *CSR[T]) WithValues(val, rowScale []T) *CSR[T] {
	ones := false
	if val == nil {
		val = s.Val
		ones = s.valOnes
	} else if s.RowEnd != nil {
		panic("sparse: WithValues with fresh values on a slack-slotted matrix")
	} else if len(val) != s.NNZ() {
		panic(fmt.Sprintf("sparse: WithValues length %d != nnz %d", len(val), s.NNZ()))
	}
	if rowScale != nil && len(rowScale) != s.Rows {
		panic(fmt.Sprintf("sparse: WithValues rowScale length %d != rows %d", len(rowScale), s.Rows))
	}
	return &CSR[T]{Rows: s.Rows, Cols: s.Cols, RowPtr: s.RowPtr, RowEnd: s.RowEnd, ColIdx: s.ColIdx, Val: val, RowScale: rowScale, nnz: s.nnz, valOnes: ones}
}

// SymNormalized returns D^{-1/2} S D^{-1/2}: entry (i,j) becomes
// Val * (1/sqrt(rowsum_i) * 1/sqrt(rowsum_j)), the label-propagation
// operator of Eq. 1 (Zhou et al. 2003). Rows with zero sum keep zero
// weight. The receiver must be square and must not use RowScale. The
// result is computed once per receiver and shared by later calls (it is
// immutable, like every constructed Matrix).
func (s *CSR[T]) SymNormalized() *CSR[T] {
	s.mustSquarePlain("SymNormalized")
	s.symOnce.Do(func() {
		invSqrt := s.invSqrtRowSums(0)
		// Slacked receivers share the slotted buffer shape so the result
		// stays a zero-copy view over the same structure (slack slots stay
		// zero and are never read); packed receivers get the packed array
		// this always built.
		val := make([]T, len(s.ColIdx))
		for i := 0; i < s.Rows; i++ {
			for k, e := s.RowPtr[i], s.End(i); k < e; k++ {
				val[k] = T(float64(s.Val[k]) * (invSqrt[i] * invSqrt[int(s.ColIdx[k])]))
			}
		}
		s.symN = &CSR[T]{Rows: s.Rows, Cols: s.Cols, RowPtr: s.RowPtr, RowEnd: s.RowEnd, ColIdx: s.ColIdx, Val: val, nnz: s.nnz}
	})
	return s.symN
}

// SymNormalizedWithSelfLoops returns the GCN operator of Eq. 2,
// D̃^{-1/2} (S+I) D̃^{-1/2} with D̃ = rowsum+1: a new CSR whose rows hold
// the self-loop entry first (weight 1/(rowsum_i+1) on the diagonal via
// the product form) followed by the original entries in source order —
// the same accumulation order as the loop nest it replaced. The receiver
// must be square, must not use RowScale, and must not already contain
// diagonal entries.
func (s *CSR[T]) SymNormalizedWithSelfLoops() *CSR[T] {
	s.mustSquarePlain("SymNormalizedWithSelfLoops")
	s.loopOnce.Do(func() {
		invSqrt := s.invSqrtRowSums(1)
		n := s.Rows
		rowPtr := make([]int, n+1)
		colIdx := make([]int32, s.NNZ()+n)
		val := make([]T, s.NNZ()+n)
		k := 0
		for i := 0; i < n; i++ {
			rowPtr[i] = k
			colIdx[k] = int32(i)
			val[k] = T(invSqrt[i] * invSqrt[i])
			k++
			for p, e := s.RowPtr[i], s.End(i); p < e; p++ {
				j := s.ColIdx[p]
				if int(j) == i {
					panic("sparse: SymNormalizedWithSelfLoops on matrix with existing diagonal entries")
				}
				colIdx[k] = j
				val[k] = T(float64(s.Val[p]) * (invSqrt[i] * invSqrt[j]))
				k++
			}
		}
		rowPtr[n] = k
		s.loopN = &CSR[T]{Rows: n, Cols: n, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	})
	if s.loopN == nil {
		panic("sparse: SymNormalizedWithSelfLoops on matrix with existing diagonal entries")
	}
	return s.loopN
}

// MeanNormalized returns the mean aggregator of Eq. 3: row i averages
// the rows its entries point at. It shares the receiver's structure and
// values and sets RowScale = 1/rowsum (0 for empty rows), so SpMM sums
// first and scales once per row — bit-identical to the sum-then-divide
// aggregation loop it replaced. The receiver must not use RowScale.
func (s *CSR[T]) MeanNormalized() *CSR[T] {
	if s.RowScale != nil {
		panic("sparse: MeanNormalized on already row-scaled matrix")
	}
	s.meanOnce.Do(func() {
		scale := make([]T, s.Rows)
		for i := 0; i < s.Rows; i++ {
			sum := 0.0
			for k, e := s.RowPtr[i], s.End(i); k < e; k++ {
				sum += float64(s.Val[k])
			}
			if sum > 0 {
				scale[i] = T(1 / sum)
			}
		}
		s.meanN = &CSR[T]{Rows: s.Rows, Cols: s.Cols, RowPtr: s.RowPtr, RowEnd: s.RowEnd, ColIdx: s.ColIdx, Val: s.Val, RowScale: scale, nnz: s.nnz}
		s.meanReady.Store(true)
	})
	return s.meanN
}

// invSqrtRowSums returns 1/sqrt(rowsum+shift) per row (0 for rows whose
// shifted sum is 0), accumulated in float64.
func (s *CSR[T]) invSqrtRowSums(shift float64) []float64 {
	out := make([]float64, s.Rows)
	for i := 0; i < s.Rows; i++ {
		sum := shift
		for k, e := s.RowPtr[i], s.End(i); k < e; k++ {
			sum += float64(s.Val[k])
		}
		if sum > 0 {
			out[i] = 1 / math.Sqrt(sum)
		}
	}
	return out
}

func (s *CSR[T]) mustSquarePlain(op string) {
	if s.Rows != s.Cols {
		panic(fmt.Sprintf("sparse: %s on non-square %dx%d matrix", op, s.Rows, s.Cols))
	}
	if s.RowScale != nil {
		panic(fmt.Sprintf("sparse: %s on row-scaled matrix", op))
	}
}

// Transpose returns sᵀ with RowScale folded into the entry values.
// Within each transposed row, entries appear in ascending source-row
// order — the order a row-major scatter loop would have visited them, so
// transpose-SpMM reproduces the hand-rolled backward scatters bit for
// bit. The result is cached by SpMMTrans/MulTrans; calling Transpose
// directly always builds a fresh matrix.
func (s *CSR[T]) Transpose() *CSR[T] {
	nnz := s.NNZ()
	rowPtr := make([]int, s.Cols+1)
	for i := 0; i < s.Rows; i++ {
		for k, e := s.RowPtr[i], s.End(i); k < e; k++ {
			rowPtr[s.ColIdx[k]+1]++
		}
	}
	for i := 0; i < s.Cols; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int32, nnz)
	val := make([]T, nnz)
	cursor := make([]int, s.Cols)
	copy(cursor, rowPtr[:s.Cols])
	for i := 0; i < s.Rows; i++ {
		var scale T = 1
		if s.RowScale != nil {
			scale = s.RowScale[i]
		}
		for k, e := s.RowPtr[i], s.End(i); k < e; k++ {
			j := s.ColIdx[k]
			c := cursor[j]
			colIdx[c] = int32(i)
			if s.RowScale != nil {
				val[c] = s.Val[k] * scale
			} else {
				val[c] = s.Val[k]
			}
			cursor[j] = c + 1
		}
	}
	return &CSR[T]{Rows: s.Cols, Cols: s.Rows, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// transposed returns the cached transpose, building it on first use.
// Safe for concurrent callers.
func (s *CSR[T]) transposed() *CSR[T] {
	s.tOnce.Do(func() { s.t = s.Transpose() })
	return s.t
}

// spmm kernel thresholds, matching the dense kernels in mat: below
// minParFlops total work the kernel runs serially (goroutine handoff
// costs more than it saves on eval-sized matrices); above it, blocks of
// roughly grainFlops are handed to the par pool.
const (
	minParFlops = 1 << 16
	grainFlops  = 1 << 14
)

// SpMM computes dst = s·x, overwriting dst; it is SpMMInto under the
// historical name.
func (s *CSR[T]) SpMM(dst, x *mat.Dense[T]) { s.SpMMInto(dst, x) }

// SpMMInto computes dst = s·x, overwriting dst. dst must be s.Rows ×
// x.Cols with x s.Cols rows, and must not alias x. Each output row
// accumulates its entries in CSR order, then applies RowScale, so
// results are bit-identical at any parallelism level.
func (s *CSR[T]) SpMMInto(dst, x *mat.Dense[T]) {
	if s.Cols != x.Rows || dst.Rows != s.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: SpMM %dx%d = %dx%d * %dx%d",
			dst.Rows, dst.Cols, s.Rows, s.Cols, x.Rows, x.Cols))
	}
	if dst == x || (len(dst.Data) > 0 && len(x.Data) > 0 && &dst.Data[0] == &x.Data[0]) {
		panic("sparse: SpMM dst must not alias x")
	}
	// The block body lives on a pooled carrier (see sargs) so repeated
	// calls allocate nothing.
	j := getSargs(s, dst, x)
	work := (s.NNZ() + s.Rows) * x.Cols
	if work < minParFlops {
		j.spmm(0, s.Rows)
	} else {
		perRow := work/s.Rows + 1
		grain := grainFlops / perRow
		if grain < 1 {
			grain = 1
		}
		par.For(s.Rows, grain, j.spmmBody)
	}
	j.put()
}

// SpMMTrans computes dst = sᵀ·x, overwriting dst, via a transpose CSR
// that is built once per matrix and cached. dst must be s.Cols × x.Cols
// with x s.Rows rows.
func (s *CSR[T]) SpMMTrans(dst, x *mat.Dense[T]) {
	s.transposed().SpMMInto(dst, x)
}

// SpMMTransInto is SpMMTrans under the Into-kernel naming convention.
func (s *CSR[T]) SpMMTransInto(dst, x *mat.Dense[T]) { s.SpMMTrans(dst, x) }

// Mul returns s·x as a fresh matrix.
func (s *CSR[T]) Mul(x *mat.Dense[T]) *mat.Dense[T] {
	dst := mat.NewOf[T](s.Rows, x.Cols)
	s.SpMM(dst, x)
	return dst
}

// MulTrans returns sᵀ·x as a fresh matrix.
func (s *CSR[T]) MulTrans(x *mat.Dense[T]) *mat.Dense[T] {
	dst := mat.NewOf[T](s.Cols, x.Cols)
	s.SpMMTrans(dst, x)
	return dst
}
