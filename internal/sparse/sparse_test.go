package sparse

import (
	"math"
	"math/rand"
	"testing"

	"trail/internal/mat"
	"trail/internal/par"
)

// randAdj builds a random symmetric adjacency (both directions stored,
// no self-loops, no duplicates) over n nodes.
func randAdj(rng *rand.Rand, n, edges int) [][]int32 {
	adj := make([][]int32, n)
	seen := map[[2]int]bool{}
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		seen[[2]int{v, u}] = true
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
	}
	return adj
}

// dense expands s into a dense matrix for reference arithmetic.
func dense(s *Matrix) *mat.Matrix {
	d := mat.New(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		scale := 1.0
		if s.RowScale != nil {
			scale = s.RowScale[i]
		}
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			d.Set(i, int(s.ColIdx[k]), d.At(i, int(s.ColIdx[k]))+s.Val[k]*scale)
		}
	}
	return d
}

func TestFromAdjStructure(t *testing.T) {
	adj := [][]int32{{1, 2}, {0}, {0}, {}}
	s := FromAdj(adj)
	if s.Rows != 4 || s.Cols != 4 || s.NNZ() != 4 {
		t.Fatalf("bad shape: %dx%d nnz %d", s.Rows, s.Cols, s.NNZ())
	}
	deg := s.Degrees()
	want := []int{2, 1, 1, 0}
	for i := range want {
		if deg[i] != want[i] {
			t.Fatalf("degree[%d] = %d, want %d", i, deg[i], want[i])
		}
	}
	sums := s.RowSums()
	for i := range want {
		if sums[i] != float64(want[i]) {
			t.Fatalf("rowsum[%d] = %v, want %d", i, sums[i], want[i])
		}
	}
}

func TestSpMMMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	adj := randAdj(rng, 30, 80)
	for _, build := range []func(*Matrix) *Matrix{
		func(s *Matrix) *Matrix { return s },
		(*Matrix).SymNormalized,
		(*Matrix).SymNormalizedWithSelfLoops,
		(*Matrix).MeanNormalized,
	} {
		s := build(FromAdj(adj))
		x := mat.RandNormal(rng, 30, 5, 0, 1)
		got := s.Mul(x)
		want := mat.MatMul(dense(s), x)
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
				t.Fatalf("SpMM mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestTransposeFoldsRowScale(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	adj := randAdj(rng, 25, 60)
	s := FromAdj(adj).MeanNormalized()
	st := s.Transpose()
	if st.RowScale != nil {
		t.Fatal("transpose should fold RowScale into values")
	}
	d := dense(s)
	dt := dense(st)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if math.Abs(d.At(i, j)-dt.At(j, i)) > 1e-15 {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSpMMTransIsAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	adj := randAdj(rng, 20, 50)
	s := FromAdj(adj).MeanNormalized()
	x := mat.RandNormal(rng, 20, 4, 0, 1)
	y := mat.RandNormal(rng, 20, 4, 0, 1)
	lhs := mat.Dot(s.Mul(x).Data, y.Data)
	rhs := mat.Dot(x.Data, s.MulTrans(y).Data)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("<Sx,y> != <x,Sᵀy>: %v vs %v", lhs, rhs)
	}
}

func TestSymNormalizedPreservesConstantOnRegular(t *testing.T) {
	// Ring graph: 2-regular, so D^{-1/2} A D^{-1/2} has eigenvalue 1 on
	// the constant vector.
	const n = 8
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		adj[i] = []int32{int32((i + 1) % n), int32((i + n - 1) % n)}
	}
	s := FromAdj(adj).SymNormalized()
	x := mat.New(n, 1)
	x.Fill(1)
	out := s.Mul(x)
	for i := 0; i < n; i++ {
		if math.Abs(out.At(i, 0)-1) > 1e-12 {
			t.Fatalf("constant vector not preserved: %v", out.At(i, 0))
		}
	}
}

func TestSelfLoopInsertedFirst(t *testing.T) {
	adj := [][]int32{{1}, {0}}
	s := FromAdj(adj).SymNormalizedWithSelfLoops()
	if s.NNZ() != 4 {
		t.Fatalf("nnz %d, want 4", s.NNZ())
	}
	for i := 0; i < 2; i++ {
		if s.ColIdx[s.RowPtr[i]] != int32(i) {
			t.Fatalf("row %d does not start with its diagonal entry", i)
		}
	}
	// deg+1 = 2 for both nodes: diagonal weight 1/2, off-diagonal 1/2.
	for k := 0; k < 4; k++ {
		if math.Abs(s.Val[k]-0.5) > 1e-15 {
			t.Fatalf("val[%d] = %v, want 0.5", k, s.Val[k])
		}
	}
}

func TestWithValuesSharesStructure(t *testing.T) {
	adj := [][]int32{{1, 2}, {0}, {0}}
	s := FromAdj(adj)
	val := []float64{2, 3, 4, 5}
	scale := []float64{1, 0.5, 0.25}
	w := s.WithValues(val, scale)
	if &w.ColIdx[0] != &s.ColIdx[0] {
		t.Fatal("WithValues must share ColIdx")
	}
	x := mat.New(3, 1)
	x.Fill(1)
	out := w.Mul(x)
	want := []float64{(2 + 3) * 1, 4 * 0.5, 5 * 0.25}
	for i, v := range want {
		if math.Abs(out.At(i, 0)-v) > 1e-15 {
			t.Fatalf("row %d: %v, want %v", i, out.At(i, 0), v)
		}
	}
}

// TestSpMMSerialParallelBitIdentical is the determinism test: the same
// SpMM on the same matrix must produce bit-identical output at any
// worker count, including on inputs large enough to cross the parallel
// threshold.
func TestSpMMSerialParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	adj := randAdj(rng, 800, 6000)
	s := FromAdj(adj).SymNormalized()
	x := mat.RandNormal(rng, 800, 32, 0, 1)

	prev := par.SetWorkers(1)
	serial := s.Mul(x)
	par.SetWorkers(8)
	parallel := s.Mul(x)
	par.SetWorkers(prev)

	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("serial and parallel SpMM differ at %d: %v vs %v",
				i, serial.Data[i], parallel.Data[i])
		}
	}
}
