package tree

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"trail/internal/mat"
)

// ForestConfig controls the Random Forest ensemble.
type ForestConfig struct {
	Trees          int
	MaxDepth       int
	MinSamplesLeaf int
	// MaxFeatures per split; 0 selects sqrt(d) at fit time (the standard
	// Random Forest default).
	MaxFeatures int
	Seed        int64
	// Parallel trains trees across GOMAXPROCS goroutines.
	Parallel bool
}

// DefaultForestConfig mirrors a reasonable scikit-learn-style default.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 60, MaxDepth: 14, MinSamplesLeaf: 2, Seed: 1, Parallel: true}
}

// Forest is a bootstrap-aggregated ensemble of CART trees.
type Forest struct {
	Config  ForestConfig
	classes int
	trees   []*DecisionTree
}

// NewForest returns an untrained forest.
func NewForest(cfg ForestConfig) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 50
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 14
	}
	if cfg.MinSamplesLeaf <= 0 {
		cfg.MinSamplesLeaf = 1
	}
	return &Forest{Config: cfg}
}

// Fit trains the ensemble on bootstrap resamples of (X, y).
func (f *Forest) Fit(X *mat.Matrix, y []int) error {
	if X.Rows != len(y) {
		return errors.New("tree: Forest.Fit rows/labels mismatch")
	}
	if X.Rows == 0 {
		return errors.New("tree: Forest.Fit empty training set")
	}
	f.classes = 0
	for _, c := range y {
		if c+1 > f.classes {
			f.classes = c + 1
		}
	}
	maxFeatures := f.Config.MaxFeatures
	if maxFeatures == 0 {
		maxFeatures = int(math.Sqrt(float64(X.Cols)))
		if maxFeatures < 1 {
			maxFeatures = 1
		}
	}
	f.trees = make([]*DecisionTree, f.Config.Trees)

	workers := 1
	if f.Config.Parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for ti := range f.trees {
		wg.Add(1)
		sem <- struct{}{}
		go func(ti int) {
			defer func() { <-sem; wg.Done() }()
			rng := rand.New(rand.NewSource(f.Config.Seed + int64(ti)*7919))
			boot := make([]int, X.Rows)
			for i := range boot {
				boot[i] = rng.Intn(X.Rows)
			}
			t := NewDecisionTree(DecisionTreeConfig{
				MaxDepth:       f.Config.MaxDepth,
				MinSamplesLeaf: f.Config.MinSamplesLeaf,
				MaxFeatures:    maxFeatures,
			})
			// Classes must be uniform across trees even if a bootstrap
			// sample misses the last class.
			t.classes = f.classes
			t.nodes = t.nodes[:0]
			t.grow(X, y, boot, 0, rng)
			f.trees[ti] = t
		}(ti)
	}
	wg.Wait()
	return nil
}

// PredictProba averages the member trees' leaf distributions.
func (f *Forest) PredictProba(X *mat.Matrix) *mat.Matrix {
	if len(f.trees) == 0 {
		panic("tree: Forest.PredictProba before Fit")
	}
	out := mat.New(X.Rows, f.classes)
	for _, t := range f.trees {
		for i := 0; i < X.Rows; i++ {
			mat.Axpy(1, t.probaRow(X.Row(i)), out.Row(i))
		}
	}
	out.Scale(1 / float64(len(f.trees)))
	return out
}
