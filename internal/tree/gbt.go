package tree

import (
	"errors"
	"math/rand"
	"sort"

	"trail/internal/mat"
)

// GBTConfig controls the gradient-boosted tree ensemble. The objective is
// XGBoost's "multi:softprob": per round, one second-order regression tree
// per class fits the softmax gradient, with Newton leaf weights
// -G/(H+lambda).
type GBTConfig struct {
	Rounds         int
	MaxDepth       int
	LearningRate   float64
	Lambda         float64 // L2 regularisation on leaf weights
	Gamma          float64 // minimum loss reduction to split
	MinChildWeight float64 // minimum hessian sum per leaf
	// Subsample is the row-sampling fraction per round.
	Subsample float64
	// ColSample is the number of feature candidates per split; 0 = all.
	ColSample int
	Seed      int64
}

// DefaultGBTConfig returns settings comparable to common XGBoost
// defaults, scaled for the synthetic datasets.
func DefaultGBTConfig() GBTConfig {
	return GBTConfig{
		Rounds:         40,
		MaxDepth:       6,
		LearningRate:   0.3,
		Lambda:         1,
		Gamma:          0,
		MinChildWeight: 1,
		Subsample:      0.8,
		ColSample:      0,
		Seed:           1,
	}
}

// GBT is the boosted ensemble: trees[round][class].
type GBT struct {
	Config  GBTConfig
	classes int
	trees   [][]*regTree
	base    float64
}

// NewGBT returns an untrained booster.
func NewGBT(cfg GBTConfig) *GBT {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 30
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 6
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.3
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1
	}
	if cfg.Subsample <= 0 || cfg.Subsample > 1 {
		cfg.Subsample = 1
	}
	if cfg.MinChildWeight <= 0 {
		cfg.MinChildWeight = 1
	}
	return &GBT{Config: cfg}
}

// Fit trains with the multiclass soft-probability objective.
func (g *GBT) Fit(X *mat.Matrix, y []int) error {
	if X.Rows != len(y) {
		return errors.New("tree: GBT.Fit rows/labels mismatch")
	}
	if X.Rows == 0 {
		return errors.New("tree: GBT.Fit empty training set")
	}
	g.classes = 0
	for _, c := range y {
		if c+1 > g.classes {
			g.classes = c + 1
		}
	}
	rng := rand.New(rand.NewSource(g.Config.Seed))
	n := X.Rows

	// Raw scores per sample per class; start at 0 (uniform softmax).
	scores := mat.New(n, g.classes)
	probs := mat.New(n, g.classes)
	grad := make([]float64, n)
	hess := make([]float64, n)

	g.trees = make([][]*regTree, 0, g.Config.Rounds)
	for round := 0; round < g.Config.Rounds; round++ {
		// Softmax over current scores.
		for i := 0; i < n; i++ {
			mat.Softmax(probs.Row(i), scores.Row(i))
		}
		// Row subsample for this round.
		idx := allIndices(n)
		if g.Config.Subsample < 1 {
			mat.Shuffle(rng, idx)
			idx = idx[:int(float64(n)*g.Config.Subsample)]
			sort.Ints(idx)
		}
		roundTrees := make([]*regTree, g.classes)
		for c := 0; c < g.classes; c++ {
			for _, i := range idx {
				p := probs.At(i, c)
				target := 0.0
				if y[i] == c {
					target = 1
				}
				grad[i] = p - target
				hess[i] = p * (1 - p)
				if hess[i] < 1e-16 {
					hess[i] = 1e-16
				}
			}
			t := &regTree{cfg: g.Config}
			t.grow(X, grad, hess, idx, 0, rng)
			roundTrees[c] = t
			// Update scores for *all* rows with the new tree.
			lr := g.Config.LearningRate
			for i := 0; i < n; i++ {
				scores.Set(i, c, scores.At(i, c)+lr*t.predict(X.Row(i)))
			}
		}
		g.trees = append(g.trees, roundTrees)
	}
	return nil
}

// PredictProba returns softmax probabilities from the boosted scores.
func (g *GBT) PredictProba(X *mat.Matrix) *mat.Matrix {
	if g.trees == nil {
		panic("tree: GBT.PredictProba before Fit")
	}
	out := mat.New(X.Rows, g.classes)
	lr := g.Config.LearningRate
	for i := 0; i < X.Rows; i++ {
		row := X.Row(i)
		score := out.Row(i)
		for _, roundTrees := range g.trees {
			for c, t := range roundTrees {
				score[c] += lr * t.predict(row)
			}
		}
		mat.Softmax(score, score)
	}
	return out
}

// --- second-order regression tree ---------------------------------------------

type regTree struct {
	cfg   GBTConfig
	nodes []node
}

func (t *regTree) grow(X *mat.Matrix, grad, hess []float64, idx []int, depth int, rng *rand.Rand) int32 {
	gSum, hSum := 0.0, 0.0
	for _, i := range idx {
		gSum += grad[i]
		hSum += hess[i]
	}
	if depth >= t.cfg.MaxDepth || len(idx) < 2 {
		return t.leaf(gSum, hSum)
	}
	f, thr, gain := t.bestSplit(X, grad, hess, idx, gSum, hSum, rng)
	if gain <= t.cfg.Gamma {
		return t.leaf(gSum, hSum)
	}
	left, right := partition(X, idx, f, thr)
	if len(left) == 0 || len(right) == 0 {
		return t.leaf(gSum, hSum)
	}
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{Feature: f, Threshold: thr})
	l := t.grow(X, grad, hess, left, depth+1, rng)
	r := t.grow(X, grad, hess, right, depth+1, rng)
	t.nodes[self].Left, t.nodes[self].Right = l, r
	return self
}

func (t *regTree) leaf(gSum, hSum float64) int32 {
	t.nodes = append(t.nodes, node{Feature: -1, Value: -gSum / (hSum + t.cfg.Lambda)})
	return int32(len(t.nodes) - 1)
}

func (t *regTree) bestSplit(X *mat.Matrix, grad, hess []float64, idx []int, gTot, hTot float64, rng *rand.Rand) (feat int, thr float64, gain float64) {
	lambda := t.cfg.Lambda
	parent := gTot * gTot / (hTot + lambda)
	feats := sampleFeatures(rng, X.Cols, t.cfg.ColSample)
	pairs := make([]valIdx, len(idx))
	gain = 0
	for _, f := range feats {
		for k, i := range idx {
			pairs[k] = valIdx{X.At(i, f), i}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue
		}
		gl, hl := 0.0, 0.0
		for k := 0; k < len(pairs)-1; k++ {
			i := pairs[k].i
			gl += grad[i]
			hl += hess[i]
			if pairs[k].v == pairs[k+1].v {
				continue
			}
			gr, hr := gTot-gl, hTot-hl
			if hl < t.cfg.MinChildWeight || hr < t.cfg.MinChildWeight {
				continue
			}
			g := 0.5 * (gl*gl/(hl+lambda) + gr*gr/(hr+lambda) - parent)
			if g > gain {
				gain = g
				feat = f
				thr = (pairs[k].v + pairs[k+1].v) / 2
			}
		}
	}
	return feat, thr, gain
}

func (t *regTree) predict(row []float64) float64 {
	cur := int32(0)
	for {
		nd := &t.nodes[cur]
		if nd.Feature < 0 {
			return nd.Value
		}
		if row[nd.Feature] <= nd.Threshold {
			cur = nd.Left
		} else {
			cur = nd.Right
		}
	}
}
