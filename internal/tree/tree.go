// Package tree implements the tree-based classifiers of the paper's
// traditional-ML track: CART decision trees, Random Forest (Breiman
// 2001), and an XGBoost-style gradient-boosted tree ensemble with the
// multiclass soft-probability objective (Chen & Guestrin 2016), all from
// scratch on the stdlib.
package tree

import (
	"math/rand"
	"sort"

	"trail/internal/mat"
)

// node is one node of a binary decision tree. Leaves have Feature == -1.
type node struct {
	Feature   int
	Threshold float64
	Left      int32 // child indexes into the tree's node arena
	Right     int32
	// Probs is the class distribution at a classification leaf.
	Probs []float64
	// Value is the output of a regression leaf (gradient boosting).
	Value float64
}

// DecisionTreeConfig controls CART growth.
type DecisionTreeConfig struct {
	MaxDepth       int
	MinSamplesLeaf int
	// MaxFeatures is the number of features sampled per split; 0 means
	// all features (plain CART), sqrt(d) is the Random Forest default.
	MaxFeatures int
	Seed        int64
}

// DecisionTree is a CART classifier grown with Gini impurity.
type DecisionTree struct {
	Config  DecisionTreeConfig
	classes int
	nodes   []node
}

// NewDecisionTree returns an untrained tree.
func NewDecisionTree(cfg DecisionTreeConfig) *DecisionTree {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinSamplesLeaf <= 0 {
		cfg.MinSamplesLeaf = 1
	}
	return &DecisionTree{Config: cfg}
}

// Fit grows the tree on rows of X with labels y.
func (t *DecisionTree) Fit(X *mat.Matrix, y []int) error {
	return t.FitIndexed(X, y, allIndices(X.Rows), rand.New(rand.NewSource(t.Config.Seed)))
}

// FitIndexed grows the tree on the given subset of rows (used by the
// forest for bootstrap samples; idx may contain repeats).
func (t *DecisionTree) FitIndexed(X *mat.Matrix, y []int, idx []int, rng *rand.Rand) error {
	t.classes = 0
	for _, c := range y {
		if c+1 > t.classes {
			t.classes = c + 1
		}
	}
	t.nodes = t.nodes[:0]
	t.grow(X, y, idx, 0, rng)
	return nil
}

func (t *DecisionTree) leaf(X *mat.Matrix, y []int, idx []int) int32 {
	probs := make([]float64, t.classes)
	for _, i := range idx {
		probs[y[i]]++
	}
	inv := 1 / float64(len(idx))
	for j := range probs {
		probs[j] *= inv
	}
	t.nodes = append(t.nodes, node{Feature: -1, Probs: probs})
	return int32(len(t.nodes) - 1)
}

func (t *DecisionTree) grow(X *mat.Matrix, y []int, idx []int, depth int, rng *rand.Rand) int32 {
	if depth >= t.Config.MaxDepth || len(idx) < 2*t.Config.MinSamplesLeaf || pure(y, idx) {
		return t.leaf(X, y, idx)
	}
	f, thr, ok := t.bestGiniSplit(X, y, idx, rng)
	if !ok {
		return t.leaf(X, y, idx)
	}
	left, right := partition(X, idx, f, thr)
	if len(left) < t.Config.MinSamplesLeaf || len(right) < t.Config.MinSamplesLeaf {
		return t.leaf(X, y, idx)
	}
	// Reserve our slot before growing children so the arena index is
	// stable.
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{Feature: f, Threshold: thr})
	l := t.grow(X, y, left, depth+1, rng)
	r := t.grow(X, y, right, depth+1, rng)
	t.nodes[self].Left, t.nodes[self].Right = l, r
	return self
}

// bestGiniSplit scans candidate features for the split minimising
// weighted Gini impurity.
func (t *DecisionTree) bestGiniSplit(X *mat.Matrix, y []int, idx []int, rng *rand.Rand) (feat int, thr float64, ok bool) {
	feats := sampleFeatures(rng, X.Cols, t.Config.MaxFeatures)
	total := make([]float64, t.classes)
	for _, i := range idx {
		total[y[i]]++
	}
	n := float64(len(idx))
	// Zero-gain splits are allowed (as in scikit-learn): problems like
	// XOR have no single impurity-reducing split, yet deeper splits
	// separate perfectly. MaxDepth bounds the recursion.
	bestScore := giniOf(total, n) + 1e-9
	pairs := make([]valIdx, len(idx))

	for _, f := range feats {
		for k, i := range idx {
			pairs[k] = valIdx{X.At(i, f), i}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue
		}
		left := make([]float64, t.classes)
		nl := 0.0
		for k := 0; k < len(pairs)-1; k++ {
			left[y[pairs[k].i]]++
			nl++
			if pairs[k].v == pairs[k+1].v {
				continue
			}
			nr := n - nl
			score := (nl*giniLeft(left, nl, total) + nr*giniRight(left, total, nr)) / n
			if score < bestScore {
				bestScore = score
				feat = f
				thr = (pairs[k].v + pairs[k+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

type valIdx struct {
	v float64
	i int
}

func giniOf(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := c / n
		s -= p * p
	}
	return s
}

func giniLeft(left []float64, nl float64, _ []float64) float64 { return giniOf(left, nl) }

func giniRight(left, total []float64, nr float64) float64 {
	if nr == 0 {
		return 0
	}
	s := 1.0
	for c := range total {
		p := (total[c] - left[c]) / nr
		s -= p * p
	}
	return s
}

func partition(X *mat.Matrix, idx []int, f int, thr float64) (left, right []int) {
	for _, i := range idx {
		if X.At(i, f) <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return left, right
}

func pure(y []int, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// sampleFeatures picks m distinct feature indices (all when m <= 0 or
// m >= d).
func sampleFeatures(rng *rand.Rand, d, m int) []int {
	if m <= 0 || m >= d {
		return allIndices(d)
	}
	perm := rng.Perm(d)
	return perm[:m]
}

// PredictProba returns per-row class probabilities.
func (t *DecisionTree) PredictProba(X *mat.Matrix) *mat.Matrix {
	out := mat.New(X.Rows, t.classes)
	for i := 0; i < X.Rows; i++ {
		copy(out.Row(i), t.probaRow(X.Row(i)))
	}
	return out
}

func (t *DecisionTree) probaRow(row []float64) []float64 {
	cur := int32(0)
	for {
		nd := &t.nodes[cur]
		if nd.Feature < 0 {
			return nd.Probs
		}
		if row[nd.Feature] <= nd.Threshold {
			cur = nd.Left
		} else {
			cur = nd.Right
		}
	}
}

// NumNodes reports the grown tree size (diagnostics and tests).
func (t *DecisionTree) NumNodes() int { return len(t.nodes) }
