package tree

import (
	"math"
	"math/rand"
	"testing"

	"trail/internal/mat"
	"trail/internal/ml"
)

func blobs(rng *rand.Rand, n, d, k int, spread float64) (*mat.Matrix, []int) {
	X := mat.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		y[i] = c
		row := X.Row(i)
		for j := range row {
			center := 0.0
			if j%k == c {
				center = 3
			}
			row[j] = center + rng.NormFloat64()*spread
		}
	}
	return X, y
}

func TestDecisionTreeLearnsXORish(t *testing.T) {
	// A single axis split cannot solve this; depth-2 CART must.
	rows := [][]float64{}
	y := []int{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		rows = append(rows, []float64{a, b})
		if (a > 0.5) != (b > 0.5) {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	X := mat.FromRows(rows)
	dt := NewDecisionTree(DecisionTreeConfig{MaxDepth: 6})
	if err := dt.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	acc := ml.Accuracy(y, ml.Predict(dt, X))
	if acc < 0.95 {
		t.Fatalf("decision tree XOR accuracy %.3f", acc)
	}
	if dt.NumNodes() < 3 {
		t.Fatalf("tree too small: %d nodes", dt.NumNodes())
	}
}

func TestDecisionTreePureLeafShortCircuit(t *testing.T) {
	X := mat.FromRows([][]float64{{1}, {2}, {3}})
	y := []int{1, 1, 1}
	dt := NewDecisionTree(DecisionTreeConfig{MaxDepth: 5})
	if err := dt.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if dt.NumNodes() != 1 {
		t.Fatalf("pure data should give a single leaf, got %d nodes", dt.NumNodes())
	}
}

func TestForestLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := blobs(rng, 300, 12, 3, 0.8)
	rf := NewForest(ForestConfig{Trees: 20, MaxDepth: 8, Seed: 1, Parallel: true})
	if err := rf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	acc := ml.Accuracy(y, ml.Predict(rf, X))
	if acc < 0.95 {
		t.Fatalf("forest accuracy %.3f", acc)
	}
	probs := rf.PredictProba(X)
	for i := 0; i < probs.Rows; i++ {
		if s := mat.Sum(probs.Row(i)); math.Abs(s-1) > 1e-9 {
			t.Fatalf("forest probs row %d sums to %v", i, s)
		}
	}
}

func TestForestGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := blobs(rng, 400, 10, 4, 1.0)
	Xtr, ytr := X.SelectRows(seqRange(0, 300)), y[:300]
	Xte, yte := X.SelectRows(seqRange(300, 400)), y[300:]
	rf := NewForest(ForestConfig{Trees: 25, MaxDepth: 10, Seed: 1})
	if err := rf.Fit(Xtr, ytr); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(yte, ml.Predict(rf, Xte)); acc < 0.85 {
		t.Fatalf("forest test accuracy %.3f", acc)
	}
}

func TestGBTLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := blobs(rng, 300, 12, 3, 0.8)
	gbt := NewGBT(GBTConfig{Rounds: 15, MaxDepth: 4, LearningRate: 0.3, Lambda: 1, Subsample: 1, Seed: 1})
	if err := gbt.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	acc := ml.Accuracy(y, ml.Predict(gbt, X))
	if acc < 0.95 {
		t.Fatalf("GBT accuracy %.3f", acc)
	}
}

func TestGBTProbabilitiesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := blobs(rng, 120, 6, 3, 0.5)
	gbt := NewGBT(GBTConfig{Rounds: 5, MaxDepth: 3, Seed: 1})
	if err := gbt.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probs := gbt.PredictProba(X)
	for i := 0; i < probs.Rows; i++ {
		s := 0.0
		for _, p := range probs.Row(i) {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("invalid probability %v", p)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("probs sum %v", s)
		}
	}
}

func TestFitErrorCases(t *testing.T) {
	if err := NewForest(DefaultForestConfig()).Fit(mat.New(0, 2), nil); err == nil {
		t.Fatal("forest: expected error on empty data")
	}
	if err := NewGBT(DefaultGBTConfig()).Fit(mat.New(2, 2), []int{0}); err == nil {
		t.Fatal("gbt: expected error on mismatched labels")
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := blobs(rng, 150, 8, 3, 0.6)
	preds := func(seed int64) []int {
		rf := NewForest(ForestConfig{Trees: 10, MaxDepth: 6, Seed: seed, Parallel: true})
		if err := rf.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		return ml.Predict(rf, X)
	}
	a, b := preds(42), preds(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different forests")
		}
	}
}

func seqRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
