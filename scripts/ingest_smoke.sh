#!/usr/bin/env bash
# ingest_smoke.sh — end-to-end crash-safety smoke of the streaming ingest
# pipeline: train a tiny model, ingest the same NDJSON feed twice — once
# uninterrupted, once kill -9'd mid-stream and restarted — and assert the
# recovered run converges to a bit-identical checkpoint and identical
# attribution answers over the live serving endpoint.
# Needs: go, curl; uses jq for JSON assertions when available.
set -euo pipefail

PORT="${TRAIL_INGEST_SMOKE_PORT:-8143}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
PID=""
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "ingest-smoke: $*"; }
fail() { echo "ingest-smoke: FAIL: $*" >&2; exit 1; }

metric() { # metric NAME — print the current value from /metrics, or 0
  curl -sf "$BASE/metrics" 2>/dev/null | awk -v m="$1" '$1 == m {print $2; found=1} END {if (!found) print 0}'
}

wait_metric() { # wait_metric NAME VALUE TRIES — poll until NAME reaches VALUE
  local i
  for i in $(seq 1 "$3"); do
    [ "$(metric "$1" | cut -d. -f1)" -ge "$2" ] 2>/dev/null && return 0
    kill -0 "$PID" 2>/dev/null || fail "ingest process died waiting for $1 >= $2"
    sleep 0.2
  done
  fail "$1 never reached $2 (last: $(metric "$1"))"
}

start_ingest() { # start_ingest DIR LOG EXTRA_ARGS...
  local dir="$1" log="$2"; shift 2
  "$WORK/trail" ingest -months 8 -events 8 -dir "$dir" -feed "$WORK/feed.ndjson" \
    -addr "127.0.0.1:$PORT" -model-dir "$WORK/ckpt" -publish-every 8 "$@" \
    >"$log" 2>&1 &
  PID=$!
  for _ in $(seq 1 100); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$PID" 2>/dev/null || { cat "$log" >&2; fail "ingest died during startup"; }
    sleep 0.2
  done
  cat "$log" >&2; fail "daemon never came up"
}

stop_ingest() { # stop_ingest LOG — SIGTERM and require a clean drain
  kill -TERM "$PID"
  for _ in $(seq 1 100); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.2
  done
  kill -0 "$PID" 2>/dev/null && fail "ingest ignored SIGTERM"
  PID=""
  grep -q "^ingest: accepted=" "$1" || fail "missing final stats line in $1"
}

answers() { # answers OUT — attribute every sampled event key against the live server
  local out="$1" key
  : >"$out"
  while read -r key; do
    curl -sf -X POST "$BASE/v1/attribute" -d "{\"kind\":\"event\",\"key\":\"$key\",\"top_k\":3}" \
      | sed 's/.*\("predictions":\[[^]]*\]\).*/\1/' >>"$out"
    echo >>"$out"
  done <"$WORK/keys.txt"
}

say "building trail"
go build -o "$WORK/trail" ./cmd/trail

say "training a 1-epoch model for the serving side"
"$WORK/trail" train -months 8 -events 8 -fast -epochs 1 -f32 -dir "$WORK/ckpt" >"$WORK/train.log" 2>&1 \
  || { cat "$WORK/train.log" >&2; fail "train"; }

say "generating the pulse feed"
"$WORK/trail" world -months 8 -events 8 -out "$WORK/feed.ndjson"
N="$(wc -l <"$WORK/feed.ndjson")"
[ "$N" -ge 20 ] || fail "feed too small ($N pulses)"
say "feed has $N pulses"

say "run A: uninterrupted ingest"
start_ingest "$WORK/stA" "$WORK/runA.log"
wait_metric trail_ingest_watermark_seq "$N" 150
sleep 1 # let the final cut's snapshot publish
curl -sf "$BASE/v1/sample?kind=event&limit=5" >"$WORK/sample.json"
if command -v jq >/dev/null 2>&1; then
  jq -r '.keys[]' <"$WORK/sample.json" >"$WORK/keys.txt"
else
  sed 's/.*"keys":\[//; s/\].*//; s/","/"\n"/g; s/"//g' "$WORK/sample.json" | head -5 >"$WORK/keys.txt"
fi
[ -s "$WORK/keys.txt" ] || fail "no sample keys"
answers "$WORK/answersA.txt"
grep -q '"predictions"' "$WORK/answersA.txt" || fail "run A returned no predictions"
curl -sf "$BASE/metrics" >"$WORK/metrics.txt"
for m in trail_ingest_accepted_total trail_ingest_applied_total trail_ingest_wal_bytes \
         trail_ingest_watermark_lag trail_ingest_snapshot_age_seconds trail_ingest_dirty_frontier \
         trail_ingest_cut_seconds trail_csr_patch_applied_total trail_csr_patch_fallback_total; do
  grep -q "^# TYPE $m" "$WORK/metrics.txt" || fail "/metrics missing $m"
done
PATCHED="$(metric trail_csr_patch_applied_total | cut -d. -f1)"
[ "$PATCHED" -ge 1 ] || fail "incremental CSR patching never engaged (trail_csr_patch_applied_total=$PATCHED)"
say "run A published $PATCHED patched CSR snapshots"
stop_ingest "$WORK/runA.log"

say "run B: kill -9 mid-stream"
start_ingest "$WORK/stB" "$WORK/runB1.log" -rate 25
wait_metric trail_ingest_durable_seq 6 150
DURABLE="$(metric trail_ingest_durable_seq | cut -d. -f1)"
[ "$DURABLE" -lt "$N" ] || fail "feed already complete at kill time ($DURABLE/$N) — raise the feed size"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""
say "killed at durable seq $DURABLE/$N"
[ -s "$WORK/stB/events.jrn" ] || fail "no WAL left behind"

say "run B: restart and drain the rest of the feed"
start_ingest "$WORK/stB" "$WORK/runB2.log"
grep -q "resuming feed at event" "$WORK/runB2.log" || fail "feeder did not resume from the durable seq"
wait_metric trail_ingest_watermark_seq "$N" 150
sleep 1
answers "$WORK/answersB.txt"
stop_ingest "$WORK/runB2.log"

say "comparing recovered state against the uninterrupted run"
cmp "$WORK/stA/ingest.ck" "$WORK/stB/ingest.ck" \
  || fail "recovered checkpoint differs from the uninterrupted run"
diff -u "$WORK/answersA.txt" "$WORK/answersB.txt" >&2 \
  || fail "recovered attribution answers differ from the uninterrupted run"

say "run C: -csr-rebuild A/B (from-scratch CSR at every cut)"
start_ingest "$WORK/stC" "$WORK/runC.log" -csr-rebuild
wait_metric trail_ingest_watermark_seq "$N" 150
sleep 1
REBUILT="$(metric trail_csr_patch_applied_total | cut -d. -f1)"
[ "$REBUILT" -eq 0 ] || fail "-csr-rebuild still patched $REBUILT snapshots"
answers "$WORK/answersC.txt"
stop_ingest "$WORK/runC.log"
cmp "$WORK/stA/ingest.ck" "$WORK/stC/ingest.ck" \
  || fail "rebuild-mode checkpoint differs from the patched run"
diff -u "$WORK/answersA.txt" "$WORK/answersC.txt" >&2 \
  || fail "rebuild-mode attribution answers differ from the patched run"

say "OK: kill -9 at event $DURABLE converged to bit-identical state and answers; patched and rebuilt CSR agree byte-for-byte"
