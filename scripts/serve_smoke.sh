#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the serving layer on a tiny world:
# train one epoch, start the daemon, hit every endpoint, assert 200s and
# well-formed JSON, exercise a reload, and run a short loadgen burst.
# Needs: go, curl; uses jq for JSON assertions when available.
set -euo pipefail

PORT="${TRAIL_SMOKE_PORT:-8099}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "serve-smoke: $*"; }
fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

# json_has FILE EXPR — assert the file is valid JSON containing EXPR
# (a jq path when jq exists, otherwise a fixed substring).
json_has() {
  if command -v jq >/dev/null 2>&1; then
    jq -e "$2" <"$1" >/dev/null || fail "$1 is not JSON with $2: $(cat "$1")"
  else
    grep -q "$3" "$1" || fail "$1 missing $3: $(cat "$1")"
  fi
}

say "building trail"
go build -o "$WORK/trail" ./cmd/trail

say "training a 1-epoch model on the tiny world"
"$WORK/trail" train -months 8 -events 10 -fast -epochs 1 -f32 -dir "$WORK/ckpt" >"$WORK/train.log" 2>&1 \
  || { cat "$WORK/train.log" >&2; fail "train"; }

say "starting the daemon on :$PORT"
"$WORK/trail" serve -months 8 -events 10 -dir "$WORK/ckpt" -addr "127.0.0.1:$PORT" >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve.log" >&2; fail "daemon died during startup"; }
  sleep 0.2
done
curl -sf "$BASE/healthz" >"$WORK/health.json" || { cat "$WORK/serve.log" >&2; fail "healthz never came up"; }
json_has "$WORK/health.json" '.status == "ok"' '"status":"ok"'

grep -q "float32 model" "$WORK/serve.log" || fail "daemon did not pick the float32 checkpoint"

say "GET /v1/stats"
curl -sf "$BASE/v1/stats" >"$WORK/stats.json"
json_has "$WORK/stats.json" '.epoch == 1 and .precision == "float32" and .events > 0' '"epoch":1'

say "GET /v1/sample"
curl -sf "$BASE/v1/sample?kind=event&limit=4" >"$WORK/sample.json"
json_has "$WORK/sample.json" '.keys | length > 0' '"keys":['
if command -v jq >/dev/null 2>&1; then
  KEY="$(jq -r '.keys[0]' <"$WORK/sample.json")"
else
  KEY="$(sed -n 's/.*"keys":\["\([^"]*\)".*/\1/p' "$WORK/sample.json")"
fi
[ -n "$KEY" ] || fail "no sample key"

say "POST /v1/attribute ($KEY)"
curl -sf -X POST "$BASE/v1/attribute" -d "{\"kind\":\"event\",\"key\":\"$KEY\",\"top_k\":3}" >"$WORK/attr.json"
json_has "$WORK/attr.json" '.predictions | length == 3' '"predictions":['
json_has "$WORK/attr.json" '.epoch == 1 and .precision == "float32"' '"precision":"float32"'

say "POST /v1/attribute error shape"
CODE="$(curl -s -o "$WORK/err.json" -w '%{http_code}' -X POST "$BASE/v1/attribute" -d '{"kind":"event","key":"no-such"}')"
[ "$CODE" = 404 ] || fail "unknown key returned $CODE"
json_has "$WORK/err.json" '.error.code == "not_found"' '"code":"not_found"'

say "POST /v1/reload"
curl -sf -X POST "$BASE/v1/reload" >"$WORK/reload.json"
json_has "$WORK/reload.json" '.epoch == 2' '"epoch":2'

say "loadgen burst"
"$WORK/trail" loadgen -url "$BASE" -c 16 -duration 2s -out "$WORK/loadgen.json"
json_has "$WORK/loadgen.json" '.errors == 0 and .requests > 0' '"errors": 0'

say "GET /metrics"
curl -sf "$BASE/metrics" >"$WORK/metrics.txt"
for m in trail_http_requests_total trail_attribute_batches_total trail_snapshot_epoch trail_reloads_total; do
  grep -q "^$m" "$WORK/metrics.txt" || fail "/metrics missing $m"
done
BATCHED="$(awk '/^trail_attribute_batched_requests_total /{print $2}' "$WORK/metrics.txt")"
[ "${BATCHED:-0}" -gt 0 ] || fail "no batched requests recorded under load"

say "graceful shutdown"
kill -TERM "$SERVER_PID"
for _ in $(seq 1 50); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.2
done
kill -0 "$SERVER_PID" 2>/dev/null && fail "daemon ignored SIGTERM"
SERVER_PID=""
grep -q "serve: stopped" "$WORK/serve.log" || fail "missing drain log"

say "OK"
