#!/usr/bin/env bash
# shard_smoke.sh — crash-safety smoke of the fault-tolerant sharded TKG
# build: run the same sharded build twice — once uninterrupted, once
# kill -9'd mid-build and restarted with -resume-shards — and assert the
# resumed run produces a bit-identical merged snapshot. A second leg runs
# the seeded shard-level chaos injector twice and requires bit-identical
# output with identical poisoned-shard accounting.
# Needs: go.
set -euo pipefail

WORK="$(mktemp -d)"
PID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "shard-smoke: $*"; }
fail() { echo "shard-smoke: FAIL: $*" >&2; exit 1; }

count_cks() { # count_cks DIR — number of shard-*.ck files (pipefail-safe)
  local n=0 f
  for f in "$1"/shard-*.ck; do [ -e "$f" ] && n=$((n + 1)); done
  echo "$n"
}

MONTHS=10 EVENTS=20 SHARDS=5
BUILD="-months $MONTHS -events $EVENTS -shards $SHARDS"

say "building trail"
go build -o "$WORK/trail" ./cmd/trail

say "reference run: uninterrupted sharded build"
"$WORK/trail" build $BUILD -shard-dir "$WORK/ref-shards" -out "$WORK/ref.gob" >"$WORK/ref.log" 2>&1 \
  || { cat "$WORK/ref.log" >&2; fail "reference build"; }
grep -q "sharded build: $SHARDS shards ($SHARDS built, 0 resumed" "$WORK/ref.log" \
  || fail "reference run did not build all $SHARDS shards"

say "kill run: single worker, widened kill window"
"$WORK/trail" build $BUILD -shard-workers 1 -shard-delay 400ms \
  -shard-dir "$WORK/kill-shards" -out "$WORK/kill.gob" >"$WORK/kill1.log" 2>&1 &
PID=$!
CKS=0
for _ in $(seq 1 400); do
  CKS="$(count_cks "$WORK/kill-shards")"
  [ "$CKS" -ge 1 ] && break
  kill -0 "$PID" 2>/dev/null || { cat "$WORK/kill1.log" >&2; fail "kill run exited before its first checkpoint"; }
  sleep 0.05
done
[ "$CKS" -ge 1 ] || fail "no shard checkpoint appeared in time"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""
CKS="$(count_cks "$WORK/kill-shards")"
say "killed -9 with $CKS/$SHARDS shard checkpoints durable"
if [ -e "$WORK/kill.gob" ]; then
  # The kill landed after the merge already wrote the snapshot; drop it
  # so the resume leg below proves it can reproduce the bytes itself.
  say "note: kill landed after the merge — removing the snapshot to test resume anyway"
  rm "$WORK/kill.gob"
fi

say "restart with -resume-shards"
"$WORK/trail" build $BUILD -resume-shards -shard-dir "$WORK/kill-shards" -out "$WORK/kill.gob" >"$WORK/kill2.log" 2>&1 \
  || { cat "$WORK/kill2.log" >&2; fail "resume build"; }
grep -Eq "sharded build: $SHARDS shards \([0-9]+ built, [1-9][0-9]* resumed" "$WORK/kill2.log" \
  || fail "resume run did not reuse the surviving checkpoints"

cmp "$WORK/ref.gob" "$WORK/kill.gob" \
  || fail "resumed snapshot differs from the uninterrupted run"
say "OK: kill -9 mid-build + -resume-shards converged to a bit-identical snapshot"

say "chaos leg: seeded shard faults must be deterministic and accounted"
# Seed 7 at rate 0.6 is a known-poisoning combination: the injector's
# decisions are pure functions of (seed, shard, attempt), so this run
# always retries several shards and permanently poisons one — the leg
# exercises the degraded-but-complete path, not just the happy path.
CHAOS="-seed 7 -months $MONTHS -events $EVENTS -shards $SHARDS -shard-chaos 0.6"
"$WORK/trail" build $CHAOS -shard-dir "$WORK/chaosA" -out "$WORK/chaosA.gob" >"$WORK/chaosA.log" 2>&1 \
  || { cat "$WORK/chaosA.log" >&2; fail "chaos run A"; }
"$WORK/trail" build $CHAOS -shard-dir "$WORK/chaosB" -out "$WORK/chaosB.gob" >"$WORK/chaosB.log" 2>&1 \
  || { cat "$WORK/chaosB.log" >&2; fail "chaos run B"; }
cmp "$WORK/chaosA.gob" "$WORK/chaosB.gob" || fail "chaos runs produced different snapshots"
# Accounting lines (pulse totals, poisoned shards) must match exactly;
# the headline line carries wall-clock times, so compare only these.
diff <(grep -E 'pulses \(|poisoned shards' "$WORK/chaosA.log") \
     <(grep -E 'pulses \(|poisoned shards' "$WORK/chaosB.log") >&2 \
  || fail "chaos accounting differs between identical runs"
grep -q "poisoned shards" "$WORK/chaosA.log" \
  || fail "expected a poisoned shard at seed 7 / rate 0.6 (injector drifted?)"
say "chaos $(grep -oE 'poisoned shards \[[0-9 ]*\]' "$WORK/chaosA.log") deterministically; events accounted"
say "OK: chaos runs are bit-identical with identical accounting"
